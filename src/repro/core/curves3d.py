"""Multidimensional Hilbert indexings (extension; Alber & Niedermeier).

The paper cites "On multidimensional Hilbert indexings" for
higher-dimensional space-filling curves -- relevant because Cplant
machines were 3-D mesh families even though the paper's simulations are
2-D.  This module provides n-dimensional Hilbert orderings via Skilling's
transpose algorithm (J. Skilling, "Programming the Hilbert curve", 2004),
so the one-dimensional-reduction strategy extends to
:class:`repro.mesh.topology.Mesh3D` machines.

Property-tested invariants: the ordering visits every cell of the
``2^order`` hypercube exactly once, moving one mesh step at a time.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.topology import Mesh3D

__all__ = ["hilbert_nd_points", "hilbert3d_points", "hilbert3d_order"]


def _transpose_to_axes(x: list[int], order: int) -> list[int]:
    """Skilling's TransposeToAxes: Gray-decode + undo excess rotations."""
    n_dims = len(x)
    n = 2 << (order - 1)
    # Gray decode by H ^ (H/2).
    t = x[n_dims - 1] >> 1
    for i in range(n_dims - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t
    # Undo excess work.
    q = 2
    while q != n:
        p = q - 1
        for i in range(n_dims - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return x


def hilbert_nd_points(order: int, n_dims: int) -> np.ndarray:
    """All points of the ``n_dims``-dimensional Hilbert curve of ``order``.

    Returns an ``(2^(order*n_dims), n_dims)`` array of coordinates in curve
    order.  ``order == 0`` yields the single origin cell.
    """
    if order < 0 or n_dims < 1:
        raise ValueError("order >= 0 and n_dims >= 1 required")
    if order == 0:
        return np.zeros((1, n_dims), dtype=np.int64)
    total_bits = order * n_dims
    n_points = 1 << total_bits
    out = np.empty((n_points, n_dims), dtype=np.int64)
    for index in range(n_points):
        # Distribute the index bits round-robin over dimensions (the
        # "transpose" form), most significant bit first.
        x = [0] * n_dims
        for bit_pos in range(total_bits):
            bit = (index >> (total_bits - 1 - bit_pos)) & 1
            x[bit_pos % n_dims] = (x[bit_pos % n_dims] << 1) | bit
        out[index] = _transpose_to_axes(x, order)
    return out


def hilbert3d_points(order: int) -> np.ndarray:
    """All points of the 3-D Hilbert curve of ``order`` (``(8^order, 3)``)."""
    return hilbert_nd_points(order, 3)


def hilbert3d_order(mesh: Mesh3D) -> np.ndarray:
    """Hilbert ordering of a 3-D mesh's node ids.

    Non-power-of-two meshes are handled by truncating the enclosing
    ``2^k`` cube, exactly like the paper truncates the 32x32 curve to the
    16x22 machine (gaps appear where the cube curve leaves the mesh).
    """
    side = max(mesh.shape)
    order = 0
    while (1 << order) < side:
        order += 1
    pts = hilbert3d_points(order)
    keep = (
        (pts[:, 0] < mesh.width)
        & (pts[:, 1] < mesh.height)
        & (pts[:, 2] < mesh.depth)
    )
    pts = pts[keep]
    return (pts[:, 2] * mesh.height + pts[:, 1]) * mesh.width + pts[:, 0]
