"""Core contribution: processor-allocation strategies and their metrics.

Implements every allocator the paper evaluates (Section 2):

* **Paging / one-dimensional reduction** (:mod:`repro.core.paging`): order
  the mesh along a curve (:mod:`repro.core.curves`: S-curve, Hilbert,
  H-indexing, row-major), then pick free processors with a sorted free
  list, First Fit, Best Fit, or Sum-of-Squares bin heuristic.
* **Gen-Alg** (:mod:`repro.core.genalg`): Krumke et al.'s
  (2 - 2/k)-approximation for minimum average pairwise distance.
* **MC / MC1x1** (:mod:`repro.core.mc`): Mache, Lo & Windisch's shell-cost
  allocator and the shape-free variant deployed on Cplant.

plus the allocation-quality metrics of Section 4.3
(:mod:`repro.core.metrics`) and a by-name registry
(:func:`repro.core.registry.make_allocator`).
"""

from repro.core.base import Allocation, Allocator, Request
from repro.core.contiguous import FirstFitSubmesh
from repro.core.curves import Curve, get_curve, hilbert, h_indexing, row_major, s_curve
from repro.core.genalg import GenAlgAllocator
from repro.core.hybrid import HybridAllocator
from repro.core.mc import MCAllocator
from repro.core.metrics import (
    average_pairwise_hops,
    components,
    is_contiguous,
    n_components,
)
from repro.core.paging import PagingAllocator
from repro.core.registry import allocator_names, make_allocator, paper_allocators

__all__ = [
    "Request",
    "Allocation",
    "Allocator",
    "Curve",
    "get_curve",
    "s_curve",
    "hilbert",
    "h_indexing",
    "row_major",
    "PagingAllocator",
    "GenAlgAllocator",
    "MCAllocator",
    "FirstFitSubmesh",
    "HybridAllocator",
    "make_allocator",
    "allocator_names",
    "paper_allocators",
    "average_pairwise_hops",
    "components",
    "n_components",
    "is_contiguous",
]
