"""Pattern-aware hybrid allocation (the paper's closing proposal).

Section 5: "Obviously, the ideal is to find a general purpose allocation
algorithm that works reasonably well for all types of problems, but a
strategy to harness the strengths of different algorithms would also be
useful."

:class:`HybridAllocator` is that strategy: it dispatches each request to a
sub-allocator chosen by the job's communication-pattern hint (the
:attr:`repro.core.base.Request.pattern_hint` field -- information the paper
argues future systems should gather from users, just as it argues for shape
information).  The default rules encode the paper's own findings: MC for
all-to-all-like traffic, curve + Best Fit for ring-like (n-body) traffic,
Hilbert + Best Fit otherwise.

``benchmarks/test_hybrid_bench.py`` evaluates it on a mixed-pattern
workload against every fixed strategy.
"""

from __future__ import annotations

from repro.core.base import Allocation, Allocator, Request
from repro.mesh.machine import Machine

__all__ = ["HybridAllocator", "default_rules"]


def default_rules() -> dict[str, Allocator]:
    """The paper-informed dispatch table (pattern name -> allocator)."""
    from repro.core.registry import make_allocator

    return {
        "all-to-all": make_allocator("mc"),
        "all-to-all-broadcast": make_allocator("mc"),
        "random": make_allocator("hilbert+bf"),
        "n-body": make_allocator("hilbert+bf"),
        "ring": make_allocator("hilbert+bf"),
    }


class HybridAllocator(Allocator):
    """Dispatch requests to sub-allocators by communication-pattern hint.

    Parameters
    ----------
    rules:
        ``{pattern_name: allocator}`` dispatch table (default:
        :func:`default_rules`).
    fallback:
        Allocator for requests without a hint or with an unknown hint
        (default: Hilbert + Best Fit, the paper's most robust strategy).
    """

    name = "hybrid"

    def __init__(
        self,
        rules: dict[str, Allocator] | None = None,
        fallback: Allocator | None = None,
    ):
        from repro.core.registry import make_allocator

        self.rules = dict(rules) if rules is not None else default_rules()
        self.fallback = fallback or make_allocator("hilbert+bf")

    def allocate(self, request: Request, machine: Machine) -> Allocation | None:
        # The default dispatch table mixes 2-D-only sub-allocators (MC), so
        # the hybrid refuses 3-D meshes up front rather than mid-workload.
        self._require_2d(machine)
        chosen = self.rules.get(request.pattern_hint or "", self.fallback)
        return chosen.allocate(request, machine)

    def sub_allocator_for(self, pattern_name: str | None) -> Allocator:
        """The allocator a given hint dispatches to (introspection)."""
        return self.rules.get(pattern_name or "", self.fallback)
