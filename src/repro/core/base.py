"""Allocator interface shared by every strategy.

An allocator receives a :class:`Request` and the current
:class:`~repro.mesh.machine.Machine` occupancy and returns an
:class:`Allocation` (the chosen processors, in rank order) or ``None`` when
the request cannot be satisfied.  On Cplant the allocator "must immediately
assign [the job] to a set of processors" and "is a separate module from the
scheduler" (Section 1) -- accordingly, allocators here are pure policy:
they never mutate the machine; the scheduler applies the returned
allocation.

Allocation order matters: the simulator maps pattern rank ``r`` to
``allocation.nodes[r]``, so the order defines the job's virtual ring for
the n-body pattern.  Each strategy documents its order (curve order for
Paging, closeness-to-centre order for MC/Gen-Alg).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.mesh.machine import Machine

__all__ = ["Request", "Allocation", "Allocator"]


@dataclass(frozen=True)
class Request:
    """A processor request passed from the scheduler to the allocator.

    Attributes
    ----------
    size:
        Number of processors the job needs.
    job_id:
        Identifier used for occupancy bookkeeping and reporting.
    shape:
        Optional ``(a, b)`` submesh shape hint.  Cplant software "does not
        get a user-supplied job shape" (Section 5), so trace jobs carry no
        shape; the MC allocator infers one (and this field lets users of the
        library supply one explicitly, the paper's recommendation for future
        systems).
    pattern_hint:
        Optional communication-pattern name (e.g. ``"all-to-all"``).  Used
        only by :class:`repro.core.hybrid.HybridAllocator`, the paper's
        closing "harness the strengths of different algorithms" proposal.
    """

    size: int
    job_id: int = 0
    shape: tuple[int, int] | None = None
    pattern_hint: str | None = None

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"request size must be >= 1, got {self.size}")
        if self.shape is not None:
            a, b = self.shape
            if a < 1 or b < 1:
                raise ValueError(f"invalid shape {self.shape}")


@dataclass
class Allocation:
    """Result of a successful allocation.

    Attributes
    ----------
    job_id:
        The requesting job.
    nodes:
        Processors actually given to the job, in rank order
        (``len(nodes) == request.size``).
    held:
        All processors removed from the free pool.  Equal to ``nodes``
        except for page sizes > 0 in the Paging allocator, where whole
        pages are held and the surplus processors are internal
        fragmentation (Section 2.1 -- the reason the paper fixes s = 0).
    """

    job_id: int
    nodes: np.ndarray
    held: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.nodes = np.asarray(self.nodes, dtype=np.int64)
        if self.held is None:
            self.held = self.nodes
        else:
            self.held = np.asarray(self.held, dtype=np.int64)
        if len(self.nodes) > 1:
            ordered = np.sort(self.nodes)
            if np.any(ordered[1:] == ordered[:-1]):
                raise ValueError("allocation contains duplicate nodes")
        if self.held is not self.nodes and not np.isin(self.nodes, self.held).all():
            raise ValueError("held must contain every allocated node")

    @property
    def size(self) -> int:
        """Number of processors the job actually uses."""
        return len(self.nodes)

    @property
    def fragmentation(self) -> int:
        """Held-but-unused processors (0 unless paging with s > 0)."""
        return len(self.held) - len(self.nodes)


class Allocator(ABC):
    """Base class for allocation strategies.

    Subclasses implement :meth:`allocate`; they must not mutate the machine.
    ``name`` is the registry key (see :mod:`repro.core.registry`).
    """

    name: str = "abstract"

    @abstractmethod
    def allocate(self, request: Request, machine: Machine) -> Allocation | None:
        """Choose processors for ``request`` given current occupancy.

        Returns ``None`` if the request cannot be satisfied (for all the
        paper's noncontiguous strategies that happens exactly when fewer
        than ``request.size`` processors are free).
        """

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _feasible(request: Request, machine: Machine) -> bool:
        return machine.n_free >= request.size

    def _require_2d(self, machine: Machine) -> None:
        """Fail fast with a clear error on meshes this strategy can't place.

        Shell/submesh geometry (MC, contiguous) and some orderings
        (H-indexing, Gen-Alg's axis decomposition) are defined on 2-D
        meshes only; handing them a 3-D machine must raise, not emit
        garbage placements.
        """
        if machine.mesh.n_dims != 2:
            raise ValueError(
                f"allocator {self.name!r} supports only 2-D meshes, got "
                f"shape {tuple(machine.mesh.shape)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
