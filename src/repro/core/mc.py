"""MC and MC1x1 shell-cost allocators (Section 2.3, Fig 4).

MC (Mache, Lo & Windisch) assumes jobs request a submesh shape such as
4 x 6.  Every candidate placement is scored by looking at the requested
submesh ("shell 0") and the rectangular rings ("shells") around it:
free processors are weighted by their shell number -- 0 inside the
submesh, 1 in the first ring, 2 in the second, and so on -- and the
allocation's cost is the summed weight of the k free processors it would
actually take, innermost shells first.  The placement with the lowest cost
wins; a perfectly free submesh costs 0.

MC1x1 is the Cplant-deployable variant: shell 0 is a single processor and
shells grow the same way (Chebyshev rings), so no shape is needed.  Krumke
et al.'s result implies MC1x1 is a (4 - 4/k)-approximation for average
pairwise distance.

Because Cplant jobs carry no shape, our MC infers one: the most-square
rectangle ``a x b`` with ``a * b >= k`` and minimal perimeter (then minimal
area), the natural reading of "users request an allocation with dimensions
that can fit the job".  An explicitly provided :attr:`Request.shape`
overrides the inference.

Conventions the paper leaves open (DESIGN.md substitution #5): candidate
placements are all anchor positions where the submesh lies inside the mesh
(every free processor for MC1x1); shells are clipped at mesh boundaries;
within a tied shell processors are taken in row-major order; tied anchors
resolve to the lowest row-major anchor.  Returned rank order is
(shell, row-major) -- innermost first.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Allocation, Allocator, Request
from repro.mesh.machine import Machine
from repro.mesh.topology import Mesh2D

__all__ = ["MCAllocator", "infer_shape", "shell_map"]


def infer_shape(k: int, mesh: Mesh2D) -> tuple[int, int]:
    """Most-square covering rectangle for ``k`` processors that fits ``mesh``.

    Minimises (perimeter, area, width) over rectangles with ``a * b >= k``
    clipped to the mesh dimensions; e.g. 12 -> 4x3, 7 -> 3x3 (not 1x7).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if k > mesh.n_nodes:
        raise ValueError(f"shape for {k} cannot fit mesh {mesh.shape}")
    best: tuple[int, int, int, tuple[int, int]] | None = None
    for a in range(1, mesh.width + 1):
        b = -(-k // a)  # ceil(k / a)
        if b > mesh.height:
            continue
        cand = (2 * (a + b), a * b, a, (a, b))
        if best is None or cand < best:
            best = cand
    if best is None:
        raise ValueError(f"no {k}-processor rectangle fits mesh {mesh.shape}")
    return best[3]


def shell_map(mesh: Mesh2D, anchor_x: int, anchor_y: int, shape: tuple[int, int]) -> np.ndarray:
    """Shell number of every node for a submesh anchored at (anchor_x, anchor_y).

    Shell 0 is the ``a x b`` submesh whose lower-left corner sits at the
    anchor; shell i is the rectangular ring at Chebyshev distance i from it
    (Fig 4).  Returns an ``(n_nodes,)`` int array.
    """
    a, b = shape
    xs = mesh.xs()
    ys = mesh.ys()
    dx = np.maximum(np.maximum(anchor_x - xs, 0), xs - (anchor_x + a - 1))
    dy = np.maximum(np.maximum(anchor_y - ys, 0), ys - (anchor_y + b - 1))
    return np.maximum(dx, dy)


class MCAllocator(Allocator):
    """MC (shaped shells) or MC1x1 (point shells) allocator.

    Parameters
    ----------
    shaped:
        True for MC (infer/accept a submesh shape); False for MC1x1.
    """

    def __init__(self, shaped: bool = True):
        self.shaped = shaped
        self.name = "mc" if shaped else "mc1x1"

    def allocate(self, request: Request, machine: Machine) -> Allocation | None:
        self._require_2d(machine)
        if not self._feasible(request, machine):
            return None
        mesh = machine.mesh
        k = request.size
        free = machine.free_nodes()
        fx = mesh.xs(free)
        fy = mesh.ys(free)

        if self.shaped:
            shape = request.shape or infer_shape(k, mesh)
        else:
            shape = (1, 1)
        a, b = shape
        if a > mesh.width or b > mesh.height:
            raise ValueError(f"shape {shape} does not fit mesh {mesh.shape}")

        # "Each free processor evaluates the quality of an allocation
        # centered on itself": one candidate submesh per free processor,
        # clamped so the a x b rectangle stays inside the mesh.  Free
        # processors are in ascending node id, so cost ties resolve to the
        # lowest row-major centre.
        anchor_x = np.clip(fx - (a - 1) // 2, 0, mesh.width - a)
        anchor_y = np.clip(fy - (b - 1) // 2, 0, mesh.height - b)

        # Shell number of every free node w.r.t. every anchor:
        #   shell = max(axis distance outside the submesh interval).
        dx = np.maximum(
            np.maximum(anchor_x[:, None] - fx[None, :], 0),
            fx[None, :] - (anchor_x[:, None] + a - 1),
        )
        dy = np.maximum(
            np.maximum(anchor_y[:, None] - fy[None, :], 0),
            fy[None, :] - (anchor_y[:, None] + b - 1),
        )
        shells = np.maximum(dx, dy)

        # Cost = sum of the k smallest shell numbers (innermost-first greedy).
        part = np.partition(shells, k - 1, axis=1)[:, :k]
        costs = part.sum(axis=1)
        best_anchor = int(np.argmin(costs))  # first min = lowest anchor

        # Select the k free nodes for that anchor: by (shell, row-major id).
        anchor_shells = shells[best_anchor]
        order = np.lexsort((free, anchor_shells))
        nodes = free[order[:k]]
        return Allocation(job_id=request.job_id, nodes=nodes)

    @staticmethod
    def anchor_costs(
        machine: Machine, k: int, shape: tuple[int, int]
    ) -> dict[tuple[int, int], int]:
        """Cost of every anchor position (introspection/visualisation aid)."""
        mesh = machine.mesh
        a, b = shape
        free = machine.free_nodes()
        if len(free) < k:
            raise ValueError("not enough free processors")
        out: dict[tuple[int, int], int] = {}
        for x in range(mesh.width - a + 1):
            for y in range(mesh.height - b + 1):
                sm = shell_map(mesh, x, y, shape)[free]
                out[(x, y)] = int(np.partition(sm, k - 1)[:k].sum())
        return out
