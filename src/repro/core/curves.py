"""Space-filling and fractal curve orderings of mesh processors (Section 2.1).

A :class:`Curve` is a bijection between curve ranks ``0 .. n-1`` and the
node ids of a mesh.  The one-dimensional-reduction (Paging) allocators treat
the machine as this rank line and pack jobs into intervals of it.

Implemented orderings:

* :func:`row_major` -- Lo et al.'s simplest page ordering,
* :func:`s_curve` -- boustrophedon/snake ordering (Fig 2a); on non-square
  meshes the straight runs can go along the short or the long dimension
  (the paper's "quick simulations" preferred the short direction, which is
  the default),
* :func:`hilbert` -- the Hilbert space-filling curve (Fig 2b),
* :func:`h_indexing` -- the closed (Hamiltonian-cycle) fractal indexing of
  Niedermeier, Reinhardt & Sanders (Fig 2c).  We reconstruct it as the
  closed Hilbert-family cycle (four order-(k-1) Hilbert sub-curves joined
  left-half-up / right-half-down, i.e. the Moore-curve composition); the
  original paper's exact reflection conventions are not recoverable from
  the figure, and every structural property the experiments rely on
  (Hamiltonian cycle, unit steps, Hilbert-class locality, truncation gaps)
  is preserved and property-tested.  See DESIGN.md substitution #4.

Non-power-of-two meshes follow the paper exactly: "To get a curve for the
16 x 22 machine, we truncated a 32 x 32 curve to the appropriate size.  The
result is 'curves' with gaps" (Section 4, Fig 6).  :meth:`Curve.gap_ranks`
exposes where those gaps fall.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.topology import Mesh2D, Mesh3D

__all__ = [
    "Curve",
    "row_major",
    "s_curve",
    "hilbert",
    "h_indexing",
    "get_curve",
    "curve_names",
    "hilbert_points",
    "h_indexing_points",
]


# ----------------------------------------------------------------------
# Point generators on 2^k x 2^k grids
# ----------------------------------------------------------------------
def _hilbert_d2xy(order: int, d: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised index -> (x, y) on a ``2^order`` Hilbert curve.

    Standard bit-twiddling conversion; the curve starts at (0, 0) and ends
    at (2^order - 1, 0).
    """
    n = 1 << order
    t = np.asarray(d, dtype=np.int64).copy()
    x = np.zeros_like(t)
    y = np.zeros_like(t)
    s = 1
    while s < n:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        # Rotate the quadrant contents.
        flip = ry == 0
        swap_only = flip & (rx == 0)
        flip_both = flip & (rx == 1)
        x_f, y_f = x[flip_both], y[flip_both]
        x[flip_both] = s - 1 - x_f
        y[flip_both] = s - 1 - y_f
        x_flip, y_flip = x[flip].copy(), y[flip].copy()
        x[flip], y[flip] = y_flip, x_flip
        del swap_only  # (swap applies to the whole flip branch)
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def hilbert_points(order: int) -> np.ndarray:
    """All points of the 2^order Hilbert curve, as an ``(n*n, 2)`` array."""
    if order < 0:
        raise ValueError("order must be >= 0")
    n = 1 << order
    d = np.arange(n * n, dtype=np.int64)
    x, y = _hilbert_d2xy(order, d)
    return np.stack([x, y], axis=1)


def h_indexing_points(order: int) -> np.ndarray:
    """All points of the closed H-indexing cycle on a 2^order grid.

    Composition (left half ascends, right half descends; see module
    docstring): with ``m = 2^(order-1)`` and ``P`` the order-(order-1)
    Hilbert path from (0,0) to (m-1,0),

    * bottom-left : ``(x,y) -> (m-1-y, x)``          starts (m-1,0), ends (m-1,m-1)
    * top-left    : same, offset (0, m)
    * top-right   : ``(x,y) -> (y, m-1-x)``, offset (m, m)
    * bottom-right: same, offset (m, 0)               ends (m, 0)

    The final point (m, 0) is adjacent to the first (m-1, 0): a Hamiltonian
    cycle.  For ``order == 0`` the single cell is returned.
    """
    if order < 0:
        raise ValueError("order must be >= 0")
    if order == 0:
        return np.zeros((1, 2), dtype=np.int64)
    m = 1 << (order - 1)
    p = hilbert_points(order - 1)
    x, y = p[:, 0], p[:, 1]
    ccw = np.stack([m - 1 - y, x], axis=1)   # 90 degrees counter-clockwise
    cw = np.stack([y, m - 1 - x], axis=1)    # 90 degrees clockwise
    bl = ccw
    tl = ccw + (0, m)
    tr = cw + (m, m)
    br = cw + (m, 0)
    return np.concatenate([bl, tl, tr, br], axis=0)


def _s_curve_points(width: int, height: int, runs: str) -> np.ndarray:
    """Snake ordering points for an exact ``width x height`` grid."""
    if runs not in ("x", "y"):
        raise ValueError("runs must be 'x' or 'y'")
    pts = []
    if runs == "x":  # straight runs along x, snaking upward through rows
        for y in range(height):
            xs = range(width) if y % 2 == 0 else range(width - 1, -1, -1)
            pts.extend((x, y) for x in xs)
    else:  # straight runs along y, snaking across columns
        for x in range(width):
            ys = range(height) if x % 2 == 0 else range(height - 1, -1, -1)
            pts.extend((x, y) for y in ys)
    return np.asarray(pts, dtype=np.int64)


# ----------------------------------------------------------------------
# Curve object
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Curve:
    """An ordering of all processors of a mesh.

    Attributes
    ----------
    name:
        Registry name (``"hilbert"``, ``"s-curve"``, ...).
    mesh:
        The mesh being ordered.
    order:
        ``order[rank] == node_id``; length ``mesh.n_nodes``.
    rank:
        Inverse permutation, ``rank[node_id] == rank``.
    """

    name: str
    mesh: Mesh2D | Mesh3D
    order: np.ndarray
    rank: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        order = np.asarray(self.order, dtype=np.int64)
        n = self.mesh.n_nodes
        if sorted(order.tolist()) != list(range(n)):
            raise ValueError(f"curve order is not a permutation of 0..{n - 1}")
        object.__setattr__(self, "order", order)
        rank = np.empty(n, dtype=np.int64)
        rank[order] = np.arange(n)
        object.__setattr__(self, "rank", rank)

    @property
    def n_nodes(self) -> int:
        """Number of processors ordered by the curve."""
        return self.mesh.n_nodes

    def step_lengths(self) -> np.ndarray:
        """Manhattan distance of each consecutive step along the curve."""
        a = self.order[:-1]
        b = self.order[1:]
        return self.mesh.manhattan(a, b)

    def gap_ranks(self) -> np.ndarray:
        """Ranks ``r`` where the step ``r -> r+1`` is not a unit mesh step.

        Exact-size curves on power-of-two square meshes have no gaps; the
        truncated curves of Fig 6 do ("arrows indicate the processor after
        a gap" -- those processors are at ranks ``gap_ranks() + 1``).
        """
        return np.flatnonzero(self.step_lengths() > 1)

    def n_gaps(self) -> int:
        """Number of discontinuities along the curve."""
        return len(self.gap_ranks())

    def is_cycle(self) -> bool:
        """True if the last processor is mesh-adjacent to the first."""
        return bool(
            self.mesh.manhattan(int(self.order[-1]), int(self.order[0])) == 1
        )

    def points(self) -> np.ndarray:
        """``(n, n_dims)`` array of node coordinates in curve order."""
        return np.stack(self.mesh.axis_coords(self.order), axis=1)


def _points_to_curve(name: str, mesh: Mesh2D, pts: np.ndarray) -> Curve:
    """Filter full-grid points to the mesh and build a Curve (truncation)."""
    keep = (pts[:, 0] < mesh.width) & (pts[:, 1] < mesh.height)
    pts = pts[keep]
    order = pts[:, 1] * mesh.width + pts[:, 0]
    return Curve(name=name, mesh=mesh, order=order)


def _enclosing_order(mesh: Mesh2D) -> int:
    side = max(mesh.width, mesh.height)
    order = 0
    while (1 << order) < side:
        order += 1
    return order


# ----------------------------------------------------------------------
# Public builders
# ----------------------------------------------------------------------
def row_major(mesh: Mesh2D) -> Curve:
    """Row-major ordering (Lo et al.'s baseline page order)."""
    return Curve("row-major", mesh, np.arange(mesh.n_nodes, dtype=np.int64))


def s_curve(mesh: Mesh2D, runs: str = "short") -> Curve:
    """Boustrophedon (snake) ordering.

    ``runs`` selects the direction of the straight runs: ``"x"``, ``"y"``,
    ``"short"`` (runs along the shorter mesh dimension; the paper's choice)
    or ``"long"``.  On square meshes ``"short"`` resolves to ``"x"``.
    """
    if runs == "short":
        runs = "x" if mesh.width <= mesh.height else "y"
    elif runs == "long":
        runs = "y" if mesh.width <= mesh.height else "x"
    pts = _s_curve_points(mesh.width, mesh.height, runs)
    order = pts[:, 1] * mesh.width + pts[:, 0]
    return Curve("s-curve", mesh, order)


def hilbert(mesh: Mesh2D) -> Curve:
    """Hilbert curve ordering, truncated from the enclosing 2^k square."""
    pts = hilbert_points(_enclosing_order(mesh))
    return _points_to_curve("hilbert", mesh, pts)


def h_indexing(mesh: Mesh2D) -> Curve:
    """H-indexing (closed fractal cycle), truncated from the enclosing square."""
    pts = h_indexing_points(_enclosing_order(mesh))
    return _points_to_curve("h-indexing", mesh, pts)


_BUILDERS = {
    "row-major": row_major,
    "s-curve": s_curve,
    "hilbert": hilbert,
    "h-indexing": h_indexing,
}

_CACHE: dict[tuple, Curve] = {}


def get_curve(name: str, mesh: Mesh2D | Mesh3D, **kwargs) -> Curve:
    """Build (and cache) a named curve for a 2-D or 3-D mesh.

    3-D meshes dispatch to :data:`repro.core.curves3d.BUILDERS_3D`; curve
    names without a 3-D construction (``"h-indexing"``) raise a clear
    :class:`ValueError`, which is how 2-D-only Paging allocators refuse
    3-D machines.
    """
    if name not in _BUILDERS:
        raise KeyError(f"unknown curve {name!r}; known: {sorted(_BUILDERS)}")
    if mesh.n_dims == 2:
        builder = _BUILDERS[name]
    else:
        from repro.core.curves3d import BUILDERS_3D

        builder = BUILDERS_3D.get(name)
        if builder is None:
            raise ValueError(
                f"curve {name!r} has no {mesh.n_dims}-D construction; "
                f"3-D-capable curves: {sorted(BUILDERS_3D)}"
            )
    key = (name, tuple(mesh.shape), mesh.torus, tuple(sorted(kwargs.items())))
    curve = _CACHE.get(key)
    if curve is None:
        curve = builder(mesh, **kwargs)
        _CACHE[key] = curve
    return curve


def curve_names() -> list[str]:
    """Names of all available curve orderings."""
    return sorted(_BUILDERS)
