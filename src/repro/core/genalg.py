"""Gen-Alg: Krumke et al.'s approximation for compact location (Section 2.2).

    For each possible point p:
        1. take the k - 1 points closest to p,
        2. compute the total pairwise distance of all k points;
    return the k-point set with the smallest total pairwise distance.

Krumke et al. prove this is a (2 - 2/k)-approximation for minimising the
average pairwise distance of the selected set, for any metric obeying the
triangle inequality.  Here the candidate points are the free processors and
the metric is Manhattan distance.

Implementation notes (this runs for every allocation in the trace sweeps):
the Manhattan pairwise-distance sum decomposes per axis, and for sorted
coordinates ``c_(0) <= ... <= c_(k-1)`` equals ``sum_j (2j - k + 1) c_(j)``,
so the evaluation of *all* candidate centres vectorises into two
``(n_free, k)`` sorts -- no Python-level loop.  Ties (equal distance to the
centre) break toward lower node id, and ties between centres toward the
lower centre id, making the allocator fully deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Allocation, Allocator, Request
from repro.mesh.machine import Machine

__all__ = ["GenAlgAllocator"]


def _axis_pairwise_sums(coords: np.ndarray) -> np.ndarray:
    """Row-wise sum over pairs ``|c_i - c_j|`` (i < j) for a 2-D array."""
    k = coords.shape[1]
    c = np.sort(coords, axis=1)
    weight = 2 * np.arange(k, dtype=np.int64) - k + 1
    return (c * weight).sum(axis=1)


class GenAlgAllocator(Allocator):
    """The Gen-Alg allocator of Fig 3."""

    name = "gen-alg"

    def allocate(self, request: Request, machine: Machine) -> Allocation | None:
        self._require_2d(machine)
        if not self._feasible(request, machine):
            return None
        mesh = machine.mesh
        free = machine.free_nodes()
        k = request.size
        n_free = len(free)
        if k == n_free:
            return Allocation(
                job_id=request.job_id,
                nodes=self._order_by_medoid(mesh, free),
            )

        # Candidate sets: each free centre plus its k-1 nearest free nodes.
        dist = mesh.pairwise_manhattan(free)
        # Composite key makes ties-by-node-id exact (ids < n_nodes).
        key = dist.astype(np.int64) * mesh.n_nodes + free[None, :]
        near = np.argpartition(key, k - 1, axis=1)[:, :k]

        member_x = mesh.xs(free)[near]
        member_y = mesh.ys(free)[near]
        totals = _axis_pairwise_sums(member_x) + _axis_pairwise_sums(member_y)
        centre = int(np.argmin(totals))  # first minimum = lowest centre id
        members = free[near[centre]]
        return Allocation(
            job_id=request.job_id, nodes=self._order_by_medoid(mesh, members)
        )

    @staticmethod
    def _order_by_medoid(mesh, members: np.ndarray) -> np.ndarray:
        """Rank order: distance from the set's medoid, ties by node id.

        The medoid (member minimising total distance to the others) anchors
        the order so the job's virtual ring stays geographically coherent;
        the paper does not specify a rank order for MC/Gen-Alg allocations,
        see DESIGN.md substitution #5.
        """
        members = np.asarray(members, dtype=np.int64)
        if len(members) == 1:
            return members.copy()
        dm = mesh.pairwise_manhattan(members)
        medoid = int(np.argmin(dm.sum(axis=1)))
        order = np.lexsort((members, dm[medoid]))
        return members[order]
