"""Hierarchy-aware allocation strategies for switched (Clos) fabrics.

The paper's allocators optimise Manhattan compactness, which is the right
objective on a mesh where messages cross other jobs' processors.  On a
switched fabric the analogous objective is *hierarchy locality*: keep a
job under as few first-hop switches as possible (rack/leaf/router) and
inside one pod/group, because only traffic that climbs past a shared
switch contends on uplinks.  These strategies read the topology's
:meth:`~repro.mesh.clos.ClosTopology.hierarchy_levels` and therefore
require a switched machine; handing them a mesh raises a clear
:class:`ValueError` (the registry's mesh strategies are the converse).

:class:`RandomAllocator` is the topology-agnostic scattered baseline: on
a mesh it reproduces the "worst-case dispersal" foil of the paper's
Figs 7/8 discussion, and on a Clos it answers the bundled campaign's
headline question -- if random placement matches the locality-aware
strategies on a fat-tree, contiguity has stopped mattering.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Allocation, Allocator, Request
from repro.mesh.machine import Machine

__all__ = [
    "RandomAllocator",
    "RackAwareAllocator",
    "PodLocalAllocator",
    "OversubAwareAllocator",
]


class RandomAllocator(Allocator):
    """Uniform random placement over the free processors (any topology).

    Deterministic given the machine state: the draw is seeded from the
    request's job id (plus an optional ``salt``), so repeated runs of a
    trace produce identical placements without threading an RNG through
    the scheduler.  Nodes are returned in draw order, which scatters the
    job's rank ring as thoroughly as its processors.
    """

    name = "random"

    def __init__(self, salt: int = 0):
        self.salt = int(salt)

    def allocate(self, request: Request, machine: Machine) -> Allocation | None:
        """Draw ``request.size`` distinct free processors uniformly."""
        if not self._feasible(request, machine):
            return None
        free = machine.free_nodes()
        rng = np.random.default_rng(
            np.random.SeedSequence([0x52A11D0, self.salt, request.job_id])
        )
        pick = rng.choice(len(free), size=request.size, replace=False)
        return Allocation(job_id=request.job_id, nodes=free[pick])


class _HierarchyAllocator(Allocator):
    """Shared plumbing: fetch hierarchy levels, pack whole units greedily."""

    def _levels(self, machine: Machine):
        levels = getattr(machine.mesh, "hierarchy_levels", None)
        if levels is None:
            raise ValueError(
                f"allocator {self.name!r} needs a switched topology with a "
                f"host hierarchy (fat-tree / leaf-spine / dragonfly), got "
                f"mesh shape {tuple(machine.mesh.shape)}"
            )
        return levels()

    @staticmethod
    def _pack_units(
        free: np.ndarray, unit_of_free: np.ndarray, order: np.ndarray, size: int
    ) -> np.ndarray:
        """Fill ``size`` hosts unit by unit in ``order`` (ranks stay
        grouped per unit, so the job's virtual ring is locality-ordered)."""
        chosen: list[np.ndarray] = []
        remaining = size
        for unit in order:
            hosts = free[unit_of_free == unit]
            if len(hosts) == 0:
                continue
            take = hosts[: min(remaining, len(hosts))]
            chosen.append(take)
            remaining -= len(take)
            if remaining == 0:
                break
        return np.concatenate(chosen)

    def _unit_order(
        self, counts: np.ndarray, busy: np.ndarray
    ) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def _rack_fill(
        self, request: Request, free: np.ndarray, unit_of: np.ndarray,
        total_per_unit: np.ndarray,
    ) -> np.ndarray:
        unit_of_free = unit_of[free]
        n_units = len(total_per_unit)
        counts = np.bincount(unit_of_free, minlength=n_units)
        busy = total_per_unit - counts
        order = self._unit_order(counts, busy)
        return self._pack_units(free, unit_of_free, order, request.size)


class RackAwareAllocator(_HierarchyAllocator):
    """Fewest-racks-first packing (the Clos analogue of MC's shells).

    Racks (lowest hierarchy level: edge switch / leaf / router) are
    filled from the emptiest-in-free-terms down -- largest free count
    first, ties to the lowest rack id -- which minimises the number of
    first-hop switches the job spans and therefore its uplink footprint.
    """

    name = "rack-aware"

    def allocate(self, request: Request, machine: Machine) -> Allocation | None:
        """Pack whole racks, largest free block first."""
        levels = self._levels(machine)
        if not self._feasible(request, machine):
            return None
        _, unit_of = levels[0]
        total = np.bincount(unit_of, minlength=int(unit_of.max()) + 1)
        nodes = self._rack_fill(request, machine.free_nodes(), unit_of, total)
        return Allocation(job_id=request.job_id, nodes=nodes)

    def _unit_order(self, counts: np.ndarray, busy: np.ndarray) -> np.ndarray:
        return np.lexsort((np.arange(len(counts)), -counts))


class PodLocalAllocator(RackAwareAllocator):
    """Best-fit pod selection, then rack-aware packing inside it.

    The pod (highest hierarchy level: fat-tree pod / dragonfly group;
    on a leaf-spine the leaf itself) with the *least* sufficient free
    capacity is chosen -- best fit, to preserve large pods for large
    jobs -- and the job is rack-packed inside it.  Jobs too large for
    any single pod spill to plain rack-aware packing across pods.
    """

    name = "pod-local"

    def allocate(self, request: Request, machine: Machine) -> Allocation | None:
        """Place inside the tightest pod that fits, else spill."""
        levels = self._levels(machine)
        if not self._feasible(request, machine):
            return None
        free = machine.free_nodes()
        _, rack_of = levels[0]
        _, pod_of = levels[-1]
        n_pods = int(pod_of.max()) + 1
        pod_free = np.bincount(pod_of[free], minlength=n_pods)
        fits = np.flatnonzero(pod_free >= request.size)
        if len(fits) > 0:
            pod = int(fits[np.argmin(pod_free[fits])])  # best fit, lowest id
            free = free[pod_of[free] == pod]
        total = np.bincount(rack_of, minlength=int(rack_of.max()) + 1)
        nodes = self._rack_fill(request, free, rack_of, total)
        return Allocation(job_id=request.job_id, nodes=nodes)


class OversubAwareAllocator(_HierarchyAllocator):
    """Quietest-uplinks-first packing for oversubscribed fabrics.

    On an oversubscribed rack every busy host competes for the same
    undersized uplink budget, so the rack order prefers the fewest busy
    hosts first (quietest uplinks), then the largest free count (fewest
    racks spanned), then the lowest id.  On a non-blocking fabric this
    degrades gracefully toward rack-aware packing.
    """

    name = "oversub-aware"

    def allocate(self, request: Request, machine: Machine) -> Allocation | None:
        """Pack racks ordered by (busy hosts, -free hosts, id)."""
        levels = self._levels(machine)
        if not self._feasible(request, machine):
            return None
        _, unit_of = levels[0]
        total = np.bincount(unit_of, minlength=int(unit_of.max()) + 1)
        nodes = self._rack_fill(request, machine.free_nodes(), unit_of, total)
        return Allocation(job_id=request.job_id, nodes=nodes)

    def _unit_order(self, counts: np.ndarray, busy: np.ndarray) -> np.ndarray:
        return np.lexsort((np.arange(len(counts)), -counts, busy))
