"""By-name construction of allocators.

Names follow the paper's labels:

* curve strategies: ``"s-curve"``, ``"hilbert"``, ``"h-indexing"``,
  ``"row-major"`` -- plain name means the sorted-free-list Paging policy;
  suffix ``+ff`` / ``+bf`` / ``+ss`` selects First Fit / Best Fit /
  Sum-of-Squares bin selection (e.g. ``"hilbert+bf"``),
* ``"mc"`` and ``"mc1x1"`` -- the shell allocators,
* ``"gen-alg"`` -- Krumke et al.'s algorithm,
* ``"contiguous"`` -- the first-fit-submesh convex baseline (Section 2's
  motivation),
* ``"hybrid"`` -- the pattern-dispatching strategy of Section 5's
  discussion,
* ``"random"`` -- the scattered baseline (any topology),
* ``"rack-aware"`` / ``"pod-local"`` / ``"oversub-aware"`` -- the
  hierarchy-aware strategies for the switched Clos fabrics of
  :mod:`repro.mesh.clos`; they raise on meshes, and
  :func:`allocator_names_clos` lists what places on a Clos machine.

:func:`paper_allocators` returns the nine strategies plotted in Figs 7/8,
and :func:`fig11_allocators` the twelve rows of the Fig 11 table.

Strategies are built lazily against whatever mesh the machine carries, and
the curve strategies backed by a 3-D ordering (``row-major``, ``s-curve``
and ``hilbert`` -- see :mod:`repro.core.curves3d`) also place jobs on
:class:`~repro.mesh.topology.Mesh3D` machines; :func:`allocator_names_3d`
lists them.  Every other strategy raises a clear :class:`ValueError` when
handed a 3-D mesh (shell/submesh geometry and H-indexing are 2-D
constructions).
"""

from __future__ import annotations

from repro.core.base import Allocator
from repro.core.contiguous import FirstFitSubmesh
from repro.core.curves3d import BUILDERS_3D
from repro.core.genalg import GenAlgAllocator
from repro.core.hierarchy import (
    OversubAwareAllocator,
    PodLocalAllocator,
    RackAwareAllocator,
    RandomAllocator,
)
from repro.core.hybrid import HybridAllocator
from repro.core.mc import MCAllocator
from repro.core.paging import PagingAllocator

__all__ = [
    "make_allocator",
    "allocator_names",
    "allocator_names_3d",
    "allocator_names_clos",
    "paper_allocators",
    "fig11_allocators",
]

_CURVES = ("s-curve", "hilbert", "h-indexing", "row-major")
#: Curve strategies with a 3-D ordering, in 2-D legend order -- derived
#: from the builder table so a new 3-D curve is registered automatically.
_CURVES_3D = tuple(c for c in _CURVES if c in BUILDERS_3D)
_SUFFIX_POLICY = {"ff": "first-fit", "bf": "best-fit", "ss": "sum-of-squares"}


def make_allocator(name: str, **kwargs) -> Allocator:
    """Build an allocator from its registry name (see module docstring).

    Extra keyword arguments pass through to the underlying class, e.g.
    ``make_allocator("s-curve+bf", runs="long")`` for the long-direction
    S-curve ablation or ``make_allocator("hilbert+ff", page_size=1)``.
    """
    lowered = name.strip().lower()
    if lowered == "mc":
        return MCAllocator(shaped=True, **kwargs)
    if lowered == "mc1x1":
        return MCAllocator(shaped=False, **kwargs)
    if lowered in ("gen-alg", "genalg"):
        return GenAlgAllocator(**kwargs)
    if lowered in ("contiguous", "first-fit-submesh"):
        return FirstFitSubmesh(**kwargs)
    if lowered == "hybrid":
        return HybridAllocator(**kwargs)
    if lowered == "random":
        return RandomAllocator(**kwargs)
    if lowered in ("rack-aware", "rackaware"):
        return RackAwareAllocator(**kwargs)
    if lowered in ("pod-local", "podlocal"):
        return PodLocalAllocator(**kwargs)
    if lowered in ("oversub-aware", "oversubscription-aware"):
        return OversubAwareAllocator(**kwargs)
    curve, _, suffix = lowered.partition("+")
    if curve in _CURVES:
        if suffix == "":
            policy = "freelist"
        else:
            policy = _SUFFIX_POLICY.get(suffix, suffix)
        return PagingAllocator(curve_name=curve, policy=policy, **kwargs)
    known = sorted(set(allocator_names()) | set(allocator_names_clos()))
    raise KeyError(f"unknown allocator {name!r}; known: {known}")


def allocator_names() -> list[str]:
    """All canonical names that place on 2-D meshes.

    ``random`` is topology-agnostic and appears here, in
    :func:`allocator_names_3d`, and in :func:`allocator_names_clos`; the
    hierarchy strategies are Clos-only and listed by the latter.
    """
    names = ["mc", "mc1x1", "gen-alg", "contiguous", "hybrid", "random"]
    for curve in _CURVES:
        names.append(curve)
        names.extend(f"{curve}+{sfx}" for sfx in _SUFFIX_POLICY)
    return names


def allocator_names_3d() -> list[str]:
    """Canonical names of the strategies that also place on 3-D meshes."""
    names = ["random"]
    for curve in _CURVES_3D:
        names.append(curve)
        names.extend(f"{curve}+{sfx}" for sfx in _SUFFIX_POLICY)
    return names


def allocator_names_clos() -> list[str]:
    """Canonical names of the strategies that place on switched fabrics.

    The hierarchy-aware strategies need
    :meth:`~repro.mesh.clos.ClosTopology.hierarchy_levels` and raise on
    meshes; ``random`` places anywhere.
    """
    return ["random", "rack-aware", "pod-local", "oversub-aware"]


def paper_allocators() -> list[Allocator]:
    """The nine strategies of Figs 7 and 8.

    MC, MC1x1, Gen-Alg, and {S-curve, Hilbert, H-indexing} with sorted
    free list and with Best Fit.  (First Fit results are described in the
    text but omitted from the paper's graphs.)
    """
    names = [
        "mc",
        "mc1x1",
        "gen-alg",
        "s-curve",
        "s-curve+bf",
        "hilbert",
        "hilbert+bf",
        "h-indexing",
        "h-indexing+bf",
    ]
    return [make_allocator(n) for n in names]


def fig11_allocators() -> list[Allocator]:
    """The twelve strategies of the Fig 11 contiguity table."""
    names = [
        "s-curve+bf",
        "hilbert+bf",
        "hilbert+ff",
        "h-indexing+bf",
        "s-curve+ff",
        "h-indexing+ff",
        "mc",
        "mc1x1",
        "s-curve",
        "h-indexing",
        "gen-alg",
        "hilbert",
    ]
    return [make_allocator(n) for n in names]
