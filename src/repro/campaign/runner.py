"""Campaign execution on the parallel experiment engine.

:func:`run_campaign` is the one call the CLI and the figure-driver shims
share: expand the campaign (interning workloads into the cache's store),
open the resumable manifest, fan the pending cells out through
:func:`repro.runner.run_many`, and record per-cell completion as results
land.  Because the engine's artifact cache is content-addressed by spec,
resumption needs no special machinery: re-running a half-finished
campaign turns every previously completed cell into a cache hit, and the
manifest is what makes that state *visible* (``status``) without opening
a single artifact.

:func:`drain_campaign` is the cooperative counterpart: N runner
processes pointed at one cache root partition the pending cells through
the lease/claim protocol (:mod:`repro.campaign.lease`) and drain the
campaign together with no duplicated compute -- the fleet-scale mode the
``drain`` CLI verb exposes.

:meth:`CampaignRun.sweep_results` regroups cells into the
:class:`~repro.experiments.sweep.SweepResult` panels the existing report
helpers consume, which is how the ported fig07/fig12/figswf drivers stay
byte-identical to their hand-written predecessors.
"""

from __future__ import annotations

import os
import socket
import tempfile
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.expand import CampaignCell, Expansion, cell_digest, expand
from repro.campaign.lease import DEFAULT_LEASE_TTL, LeaseDir, lease_dir_path
from repro.campaign.manifest import CampaignManifest, manifest_path
from repro.campaign.model import Campaign
from repro.runner import CellResult, ResultCache, TierDecision, run_many

__all__ = [
    "CampaignRun",
    "CampaignDrain",
    "run_campaign",
    "drain_campaign",
    "group_sweep_results",
    "prune_campaign",
]


def group_sweep_results(pairs) -> dict:
    """Group ``(cell, RunSummary)`` pairs into per-mesh sweep panels.

    Returns ``{mesh_label: [SweepResult per pattern]}`` with meshes,
    patterns and cells all in first-appearance (i.e. expansion) order --
    exactly the grouping the hand-written sweep drivers produced, so
    their ``report`` functions (and the golden snapshots) apply
    unchanged.  Shared by :meth:`CampaignRun.sweep_results` and the
    report module's machine-comparison table.
    """
    from repro.experiments.sweep import SweepResult

    panels: dict = {}
    for cell, summary in pairs:
        mesh_label = cell.coords["mesh"]
        pattern = cell.coords["pattern"]
        group = panels.setdefault(mesh_label, {})
        if pattern not in group:
            group[pattern] = SweepResult(
                mesh_shape=cell.spec.mesh_shape,
                pattern=pattern,
                torus=cell.spec.torus,
            )
        group[pattern].cells.append(summary)
    return {mesh: list(group.values()) for mesh, group in panels.items()}


@dataclass
class CampaignRun:
    """Outcome of one ``run`` invocation over a campaign.

    ``selected``/``results`` are index-aligned; with ``limit`` they cover
    only the first N pending cells, otherwise every cell in expansion
    order.  ``manifest`` reflects the post-run completion state.
    """

    expansion: Expansion
    selected: list[CampaignCell] = field(default_factory=list)
    results: list[CellResult] = field(default_factory=list)
    manifest: CampaignManifest | None = None
    wall: float = 0.0
    hits: int = 0
    misses: int = 0
    #: How the engine dispatched the pending cells (tier + reason).
    tier_decision: TierDecision | None = None

    @property
    def campaign(self) -> Campaign:
        return self.expansion.campaign

    def sweep_results(self) -> dict:
        """Per-mesh :class:`SweepResult` panels, in axis declaration order
        (see :func:`group_sweep_results`)."""
        return group_sweep_results(
            (cell, result.summary)
            for cell, result in zip(self.selected, self.results)
        )

    def summary_line(self) -> str:
        counts = (
            self.manifest.counts([c.digest for c in self.expansion.cells])
            if self.manifest is not None
            else {"done": len(self.results), "total": len(self.expansion.cells)}
        )
        return (
            f"campaign {self.campaign.name!r}: ran {len(self.selected)} cells "
            f"({self.hits} from cache, {self.misses} computed) in {self.wall:.1f}s; "
            f"{counts['done']}/{counts['total']} cells done"
        )


def _artifact_exists(cache: ResultCache | None, cell: CampaignCell) -> bool:
    """Cheap existence check for a cell's cached artifact (no decode)."""
    if cache is None:
        return False
    try:
        key = cache.key_for(cell.spec)
    except KeyError:  # ref spec whose trace left the store
        return False
    return any(path.is_file() for path in cache._candidate_paths(key))


def run_campaign(
    campaign: Campaign,
    cache: ResultCache | None = None,
    jobs: int | None = 1,
    limit: int | None = None,
    progress: Callable[[int, int, CellResult], None] | None = None,
    tier: str | None = None,
) -> CampaignRun:
    """Expand and run a campaign, resuming from its manifest.

    Parameters
    ----------
    campaign:
        The validated campaign model.
    cache:
        Artifact cache; also supplies the workload store SWF sources are
        interned into and the directory the manifest lives next to.
        ``None`` runs without persistence (in-memory manifest, inline
        traces) -- same results, nothing to resume.
    jobs:
        Worker processes for the engine fan-out; ``None`` auto-tunes
        from the host's CPUs and the manifest's recorded mean cell cost
        (:func:`repro.runner.auto_jobs`).
    limit:
        Run at most this many *not-yet-done* cells (completed cells are
        skipped entirely).  The natural increment for huge campaigns and
        what the resumption tests interrupt with.
    progress:
        Optional ``callback(done, total, cell)`` forwarded to
        :func:`run_many`.
    tier:
        Execution tier for the engine (``auto``/``inline``/``process``/
        ``process+shm``); ``None`` falls back to the campaign file's
        ``[campaign] tier`` and then to ``auto``.  When the manifest has
        recorded compute timings, they calibrate the ``auto`` policy so
        resumed campaigns skip the probe.  Results, artifacts and cache
        keys are identical for every tier.
    """
    if limit is not None and limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit}")
    if tier is None:
        tier = campaign.tier if campaign.tier is not None else "auto"
    store = cache.traces if cache is not None else None
    expansion = expand(campaign, store=store)
    path = (
        manifest_path(cache.root, campaign.name, expansion.digest)
        if cache is not None
        else None
    )
    manifest = CampaignManifest.open(path, campaign.name, expansion.digest)

    if limit is None:
        selected = list(expansion.cells)
    else:
        # A cell only counts as done if its artifact still exists -- the
        # manifest can outlive artifacts (prune/vacuum), and a limited
        # run must not skip cells it would have to recompute.
        done = manifest.done_digests()
        selected = [
            c
            for c in expansion.cells
            if c.digest not in done or not _artifact_exists(cache, c)
        ][:limit]

    by_digest = {c.digest: c for c in selected}
    hits0 = cache.hits if cache is not None else 0
    misses0 = cache.misses if cache is not None else 0

    def on_cell(done_n: int, total: int, result: CellResult) -> None:
        digest = cell_digest(result.spec)
        cell = by_digest.get(digest)
        if cell is not None:
            manifest.mark_done(
                digest, cell.coords, cached=result.cached, elapsed=result.elapsed
            )
            manifest.flush()
        if progress is not None:
            progress(done_n, total, result)

    decisions: list = []
    start = time.perf_counter()
    results = run_many(
        [c.spec for c in selected],
        jobs=jobs,
        cache=cache,
        progress=on_cell,
        tier=tier,
        est_cell_s=manifest.mean_compute_seconds(),
        on_decision=decisions.append,
    )
    wall = time.perf_counter() - start
    hits = (cache.hits - hits0) if cache is not None else 0
    misses = (cache.misses - misses0) if cache is not None else len(selected)
    decision = decisions[0] if decisions else None
    manifest.record_run(
        wall,
        hits=hits,
        misses=misses,
        n_selected=len(selected),
        limit=limit,
        tier=decision.tier if decision is not None else None,
    )
    manifest.flush()
    return CampaignRun(
        expansion=expansion,
        selected=selected,
        results=results,
        manifest=manifest,
        wall=wall,
        hits=hits,
        misses=misses,
        tier_decision=decision,
    )


@dataclass
class CampaignDrain:
    """Outcome of one runner's cooperative ``drain`` over a campaign.

    Unlike :class:`CampaignRun`, ``results`` holds only the cells *this*
    runner resolved -- the rest of the campaign was (or is being) drained
    by other runners sharing the cache root.  ``manifest`` reflects the
    merged completion state as of the final flush, so ``summary_line``
    reports campaign-wide progress even from one runner's vantage point.
    """

    expansion: Expansion
    runner: str
    results: list[CellResult] = field(default_factory=list)
    manifest: CampaignManifest | None = None
    wall: float = 0.0
    hits: int = 0
    misses: int = 0
    #: Claim batches this runner processed.
    batches: int = 0
    #: Cells adopted from expired leases (dead runners).
    stolen: int = 0
    #: One TierDecision per batch, in order.
    tier_decisions: list[TierDecision] = field(default_factory=list)

    @property
    def campaign(self) -> Campaign:
        return self.expansion.campaign

    def summary_line(self) -> str:
        counts = self.manifest.counts([c.digest for c in self.expansion.cells])
        stolen = f", {self.stolen} stolen" if self.stolen else ""
        return (
            f"campaign {self.campaign.name!r} drained by {self.runner!r}: "
            f"ran {len(self.results)} cells ({self.hits} from cache, "
            f"{self.misses} computed{stolen}) in {self.wall:.1f}s; "
            f"{counts['done']}/{counts['total']} cells done"
        )


def _default_runner_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _cut_drain_segment(cache: ResultCache, expansion: Expansion) -> str | None:
    """Pack every trace the campaign references into one segment file.

    The carried "segment sharing" optimisation: a drain calls
    :func:`run_many` once per claim batch, and without this each
    ``process+shm`` batch would re-pack the same columns.  Digests
    missing from the store are simply left out -- workers fall back to
    the store for those.  Returns the temp file's path (caller unlinks)
    or ``None`` when the campaign references no stored traces.
    """
    from repro.trace.segment import write_segment

    digests = sorted(
        {c.spec.trace_ref for c in expansion.cells if c.spec.trace_ref is not None}
    )
    rows = {}
    for digest in digests:
        try:
            rows[digest] = cache.traces.get(digest)
        except KeyError:
            continue
    if not rows:
        return None
    fd, path = tempfile.mkstemp(prefix="repro-drain-segment-", suffix=".bin")
    os.close(fd)
    write_segment(path, rows)
    return path


def drain_campaign(
    campaign: Campaign,
    cache: ResultCache,
    runner: str | None = None,
    jobs: int | None = 1,
    batch: int = 8,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    progress: Callable[[int, int, CellResult], None] | None = None,
    tier: str | None = None,
    poll_s: float = 0.25,
) -> CampaignDrain:
    """Cooperatively drain a campaign as one of N concurrent runners.

    The lease/claim protocol (:mod:`repro.campaign.lease`) partitions the
    pending cells among every runner process pointed at the same cache
    root: claim a batch of unleased pending cells (O_EXCL -- no two
    runners get the same cell), run it through the engine, flush each
    completion to the shared manifest, release the leases, repeat until
    the *campaign* is done -- including cells other runners complete,
    which become visible through manifest refreshes between batches.  A
    heartbeat thread keeps this runner's leases fresh; leases whose
    runner died (SIGKILL -- no heartbeats for ``lease_ttl``) are stolen
    and their cells recomputed, the same resume semantics an interrupted
    single ``run`` has.

    Parameters mirror :func:`run_campaign` except:

    runner:
        Stable identifier recorded in leases, cell records and run
        history (default ``<host>-<pid>``).
    jobs:
        Engine workers *per batch* for this runner (default 1: the
        cooperating runners themselves are the parallelism; ``None``
        auto-tunes, for a lone drainer).
    batch:
        Cells claimed per iteration.  Small batches spread work evenly
        as the campaign tail drains; large ones amortise claim overhead.
    lease_ttl:
        Seconds without heartbeats before this runner's leases become
        stealable.
    poll_s:
        Sleep between manifest polls when every pending cell is leased
        to a live runner.

    A drain needs the shared cache -- it is both the lease rendezvous
    and what makes worst-case double-claims benign (the second claimer
    gets a cache hit, not a recompute).
    """
    if cache is None:
        raise ValueError("drain_campaign needs a cache (the shared drain root)")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if tier is None:
        tier = campaign.tier if campaign.tier is not None else "auto"
    runner_id = str(runner) if runner is not None else _default_runner_id()

    expansion = expand(campaign, store=cache.traces)
    path = manifest_path(cache.root, campaign.name, expansion.digest)
    manifest = CampaignManifest.open(path, campaign.name, expansion.digest)
    leases = LeaseDir(
        lease_dir_path(cache.root, campaign.name, expansion.digest),
        runner=runner_id,
        ttl=lease_ttl,
    )
    manifest.heartbeat(runner_id)

    cells = {c.digest: c for c in expansion.cells}
    total = len(expansion.cells)
    completed = 0

    segment = (
        _cut_drain_segment(cache, expansion)
        if jobs is None or jobs > 1
        else None
    )

    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(lease_ttl / 4.0):
            leases.heartbeat()

    beater = threading.Thread(
        target=_beat, name=f"lease-heartbeat-{runner_id}", daemon=True
    )
    beater.start()

    results: list[CellResult] = []
    decisions: list[TierDecision] = []
    hits0, misses0 = cache.hits, cache.misses
    n_stolen = n_batches = 0
    start = time.perf_counter()
    try:
        while True:
            manifest.refresh()
            done = manifest.done_digests()
            pending = [
                c
                for c in expansion.cells
                if c.digest not in done or not _artifact_exists(cache, c)
            ]
            if not pending:
                break
            claimed, stolen = leases.claim_batch(
                (c.digest for c in pending), batch
            )
            got = claimed + stolen
            if not got:
                # Every pending cell is leased to a live runner; wait for
                # their completions (or their leases' expiry) to show up.
                time.sleep(poll_s)
                continue
            n_stolen += len(stolen)
            n_batches += 1

            def on_cell(done_n: int, batch_total: int, result: CellResult) -> None:
                nonlocal completed
                digest = cell_digest(result.spec)
                cell = cells.get(digest)
                if cell is not None:
                    manifest.mark_done(
                        digest,
                        cell.coords,
                        cached=result.cached,
                        elapsed=result.elapsed,
                        runner=runner_id,
                    )
                    manifest.flush()
                    # Release strictly after the flush: a crash between
                    # the two leaks a lease over a done cell, never a
                    # released lease over an unrecorded one.
                    leases.release(digest)
                completed += 1
                if progress is not None:
                    progress(completed, total, result)

            results.extend(
                run_many(
                    [cells[d].spec for d in got],
                    jobs=jobs,
                    cache=cache,
                    progress=on_cell,
                    tier=tier,
                    est_cell_s=manifest.mean_compute_seconds(),
                    on_decision=decisions.append,
                    segment_path=segment,
                )
            )
    finally:
        stop.set()
        beater.join(timeout=5.0)
        leases.release_all()
        if segment is not None:
            try:
                os.unlink(segment)
            except OSError:
                pass
    wall = time.perf_counter() - start
    hits = cache.hits - hits0
    misses = cache.misses - misses0
    manifest.heartbeat(runner_id)
    last = decisions[-1] if decisions else None
    manifest.record_run(
        wall,
        hits=hits,
        misses=misses,
        n_selected=len(results),
        limit=None,
        tier=last.tier if last is not None else None,
        runner=runner_id,
        mode="drain",
    )
    manifest.flush()
    return CampaignDrain(
        expansion=expansion,
        runner=runner_id,
        results=results,
        manifest=manifest,
        wall=wall,
        hits=hits,
        misses=misses,
        batches=n_batches,
        stolen=n_stolen,
        tier_decisions=decisions,
    )


def prune_campaign(
    campaign: Campaign, cache: ResultCache, dry_run: bool = False
) -> tuple[list, Path | None]:
    """Retire one campaign: its cached artifacts plus its manifest.

    Expands the campaign to recover the exact cell set, removes the
    artifacts whose cache keys belong to it (via
    :meth:`ResultCache.prune` with the ``keys`` criterion -- cells
    shared with *other* sweeps are removed too, but re-running those
    sweeps simply recomputes them), and deletes the manifest file.
    ``dry_run`` reports without deleting.  Returns ``(artifact paths,
    manifest path or None)``; follow with ``vacuum`` to drop traces
    nothing references any more.
    """
    store = cache.traces
    expansion = expand(campaign, store=store)
    keys = set()
    for cell in expansion.cells:
        try:
            keys.add(cache.key_for(cell.spec))
        except KeyError:
            # Ref spec whose trace already left the store: its artifact
            # key cannot be recomputed, so there is nothing addressable
            # left to remove (vacuum handles any corrupt leftovers).
            continue
    removed = cache.prune(keys=keys, dry_run=dry_run) if keys else []
    path = manifest_path(cache.root, campaign.name, expansion.digest)
    manifest_file: Path | None = None
    if path.is_file():
        manifest_file = path
        if not dry_run:
            path.unlink()
    return removed, manifest_file
