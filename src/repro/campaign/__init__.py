"""Declarative experiment campaigns.

The paper's evaluation is a *matrix* of scenarios -- communication
patterns x allocation strategies x machine shapes x loads -- and this
subsystem makes that matrix a data file instead of a Python driver: a
TOML/JSON **campaign file** declares the axes, filters and per-cell
overrides; :func:`expand` turns it into validated
:class:`~repro.runner.spec.ExperimentSpec` cells (deduplicated by
content digest, workloads interned into the content-addressed store);
:func:`run_campaign` executes them on the parallel engine with a
**manifest** next to the cache that makes interrupted campaigns resume
warm; and the report helpers aggregate completed cells into comparison
tables grouped by any axis.  :func:`drain_campaign` lets N runner
processes sharing a cache root drain one campaign cooperatively through
the lease/claim protocol (:mod:`repro.campaign.lease`) -- the ``drain``
CLI verb, with ``--runners N`` spawning a local fleet.

The bundled campaign files under ``repro/campaign/data/`` reproduce the
fig07 / fig12 / figswf panels (the figure drivers are now thin shims over
them) plus a multi-shape panel no hand-written driver covers.  CLI::

    python -m repro.campaign expand fig07
    python -m repro.campaign run    path/to/campaign.toml --jobs 4
    python -m repro.campaign status fig07
    python -m repro.campaign report fig07 --group-by mesh
"""

from repro.campaign.expand import CampaignCell, Expansion, SourceInfo, cell_digest, expand
from repro.campaign.lease import DEFAULT_LEASE_TTL, FileLock, Lease, LeaseDir, lease_dir_path
from repro.campaign.manifest import CampaignManifest, manifest_path
from repro.campaign.model import (
    Campaign,
    CampaignError,
    MeshAxis,
    TraceSource,
    bundled_campaign_names,
    bundled_campaign_path,
    load_campaign,
    loads_campaign,
    parse_mesh,
)
from repro.campaign.report import (
    REPORT_FORMATS,
    completed_cells,
    completed_rows,
    export_report,
    format_campaign_report,
    format_campaign_status,
    format_expansion,
)
from repro.campaign.runner import (
    CampaignDrain,
    CampaignRun,
    drain_campaign,
    prune_campaign,
    run_campaign,
)

__all__ = [
    "Campaign",
    "CampaignCell",
    "CampaignDrain",
    "CampaignError",
    "CampaignManifest",
    "CampaignRun",
    "DEFAULT_LEASE_TTL",
    "Expansion",
    "FileLock",
    "Lease",
    "LeaseDir",
    "MeshAxis",
    "REPORT_FORMATS",
    "SourceInfo",
    "TraceSource",
    "bundled_campaign_names",
    "bundled_campaign_path",
    "cell_digest",
    "completed_cells",
    "completed_rows",
    "drain_campaign",
    "expand",
    "export_report",
    "format_campaign_report",
    "format_campaign_status",
    "format_expansion",
    "lease_dir_path",
    "load_campaign",
    "loads_campaign",
    "manifest_path",
    "parse_mesh",
    "prune_campaign",
    "run_campaign",
]
