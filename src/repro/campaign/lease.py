"""Cell leases: the claim protocol that lets N runners drain one campaign.

A *lease* is one JSON file per claimed cell under the campaign's lease
directory (``<cache-root>/campaigns/<name>-<digest12>.leases/``).  The
protocol is pure filesystem atomics, so it works for any set of runner
processes sharing a cache root -- one host or several over a shared
filesystem:

* **Claim** is ``O_CREAT | O_EXCL``: exactly one runner can create a
  cell's lease file, so concurrently draining runners partition the
  pending cells with no coordinator and no duplicated compute.
* **Heartbeat**: a runner periodically rewrites its lease files
  (temp file + :func:`os.replace`) with a fresh ``heartbeat_at``.  A
  lease whose heartbeat is older than its TTL is *expired* -- the
  runner that held it is presumed dead (SIGKILL leaves no chance to
  clean up).
* **Steal** reclaims expired leases under a directory-wide lock file
  (:class:`FileLock`), so two runners never both adopt the same dead
  runner's cell: the stealer re-reads the lease inside the lock,
  unlinks it only if still expired, and re-claims with ``O_EXCL``.
* **Release** unlinks the lease after the cell's completion is flushed
  to the campaign manifest, in that order -- a crash between the two
  at worst leaks a lease over a *done* cell, which the next claimer
  detects from the manifest and skips.

Completion itself is never recorded here: the manifest (and the
content-addressed artifact cache under it) stays the source of truth,
which is what makes the worst-case races benign -- a cell claimed twice
across a steal window is served from the artifact cache, not recomputed.

>>> import tempfile
>>> with tempfile.TemporaryDirectory() as root:
...     a = LeaseDir(root, runner="a")
...     b = LeaseDir(root, runner="b")
...     a.claim("cell-1"), b.claim("cell-1"), b.claim("cell-2")
(True, False, True)
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = ["FileLock", "Lease", "LeaseDir", "DEFAULT_LEASE_TTL", "lease_dir_path"]

#: Default lease time-to-live in seconds: a runner missing this many
#: seconds of heartbeats is presumed dead and its cells become stealable.
#: Heartbeats fire every TTL/4, so transient stalls of a live runner
#: would need to exceed 45s (at the default) before a steal can race it.
DEFAULT_LEASE_TTL = 60.0

#: Suffix of a campaign's lease directory, next to its manifest.
LEASE_DIRNAME_SUFFIX = ".leases"


def lease_dir_path(cache_root: str | Path, name: str, digest: str) -> Path:
    """Lease directory for a campaign, next to its manifest file."""
    from repro.campaign.manifest import MANIFEST_DIRNAME

    return (
        Path(cache_root)
        / MANIFEST_DIRNAME
        / f"{name}-{digest[:12]}{LEASE_DIRNAME_SUFFIX}"
    )


class FileLock:
    """Advisory exclusive lock backed by an ``O_EXCL`` lock file.

    Blocks up to ``timeout_s`` acquiring, polling with a short sleep.  A
    lock file older than ``stale_s`` is presumed abandoned by a crashed
    holder and broken; every real critical section here (a manifest
    flush, a lease steal) takes milliseconds, so any age near
    ``stale_s`` means the holder died between create and unlink.  Used
    as a context manager::

        with FileLock(path):
            ...read-merge-write...
    """

    def __init__(self, path: str | Path, timeout_s: float = 10.0, stale_s: float = 10.0):
        self.path = Path(path)
        self.timeout_s = float(timeout_s)
        self.stale_s = float(stale_s)

    def acquire(self) -> None:
        """Take the lock, breaking stale lock files; raises TimeoutError."""
        deadline = time.monotonic() + self.timeout_s
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - self.path.stat().st_mtime
                except OSError:
                    continue  # holder released between open and stat; retry
                if age > self.stale_s:
                    # Presumed-dead holder.  The unlink can in principle
                    # race another breaker removing a *fresh* lock it
                    # just created, but only within the stat->unlink
                    # window of an already-pathological (crashed-holder)
                    # path; the retry loop re-serializes either way.
                    try:
                        self.path.unlink()
                    except OSError:
                        pass
                    continue
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"could not acquire lock {self.path} within "
                        f"{self.timeout_s:g}s (held {age:.1f}s)"
                    ) from None
                time.sleep(0.01)
                continue
            os.write(fd, f"{os.getpid()}\n".encode())
            os.close(fd)
            return

    def release(self) -> None:
        """Drop the lock (idempotent)."""
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


@dataclass(frozen=True)
class Lease:
    """Decoded contents of one lease file."""

    digest: str
    runner: str
    acquired_at: float
    heartbeat_at: float
    ttl: float

    def expired(self, now: float | None = None) -> bool:
        """Whether the holder has missed a full TTL of heartbeats."""
        return (now if now is not None else time.time()) > self.heartbeat_at + self.ttl


class LeaseDir:
    """One runner's view of a campaign's lease directory.

    Thread-safe for the one concurrent pattern the drain loop uses: the
    main thread claims/releases while a heartbeat thread refreshes the
    currently held leases.
    """

    #: Lock file serializing steals (never plain claims, which are
    #: already atomic via ``O_EXCL``).
    STEAL_LOCK = ".steal.lock"

    def __init__(self, root: str | Path, runner: str, ttl: float = DEFAULT_LEASE_TTL):
        if ttl <= 0:
            raise ValueError(f"lease ttl must be > 0, got {ttl}")
        self.root = Path(root)
        self.runner = str(runner)
        self.ttl = float(ttl)
        self._held: set[str] = set()
        self._guard = threading.Lock()

    def path_for(self, digest: str) -> Path:
        """Lease file for one cell digest."""
        return self.root / f"{digest}.json"

    def held(self) -> set[str]:
        """Digests this runner currently holds (snapshot)."""
        with self._guard:
            return set(self._held)

    # -- claim ---------------------------------------------------------
    def claim(self, digest: str) -> bool:
        """Try to claim one cell; False if any lease file already exists."""
        self.root.mkdir(parents=True, exist_ok=True)
        now = time.time()
        payload = self._payload(digest, acquired_at=now, heartbeat_at=now)
        try:
            fd = os.open(
                self.path_for(digest), os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        os.write(fd, payload)
        os.close(fd)
        with self._guard:
            self._held.add(digest)
        return True

    def claim_batch(self, digests, n: int) -> tuple[list[str], list[str]]:
        """Claim up to ``n`` cells from ``digests``, stealing expired leases.

        Returns ``(claimed, stolen)``: fresh ``O_EXCL`` claims first;
        when those alone cannot fill the batch, expired leases observed
        along the way are re-claimed under the steal lock.  Cells whose
        leases are live (another runner, still heartbeating) are left
        alone.
        """
        claimed: list[str] = []
        expired: list[str] = []
        now = time.time()
        for digest in digests:
            if len(claimed) >= n:
                break
            if self.claim(digest):
                claimed.append(digest)
                continue
            lease = self.read(digest)
            if lease is None or lease.expired(now):
                expired.append(digest)
        stolen: list[str] = []
        if len(claimed) < n and expired:
            stolen = self.steal(expired, n - len(claimed))
        return claimed, stolen

    # -- inspect -------------------------------------------------------
    def read(self, digest: str) -> Lease | None:
        """Decode one lease file; ``None`` for missing/corrupt files.

        A corrupt lease (torn write from a crashed runner) reads as
        ``None``, which callers treat like an expired lease: stealable.
        """
        try:
            data = json.loads(self.path_for(digest).read_text())
            return Lease(
                digest=digest,
                runner=str(data["runner"]),
                acquired_at=float(data["acquired_at"]),
                heartbeat_at=float(data["heartbeat_at"]),
                ttl=float(data["ttl"]),
            )
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def live(self, digests) -> dict[str, Lease]:
        """The unexpired leases among ``digests`` (any runner's)."""
        now = time.time()
        out: dict[str, Lease] = {}
        for digest in digests:
            lease = self.read(digest)
            if lease is not None and not lease.expired(now):
                out[digest] = lease
        return out

    # -- steal ---------------------------------------------------------
    def steal(self, digests, n: int) -> list[str]:
        """Adopt up to ``n`` expired leases, serialized by the steal lock.

        Each candidate is re-read inside the lock (the owner may have
        heartbeated, or released and a third runner claimed) and only an
        actually-expired lease is unlinked and re-claimed.
        """
        stolen: list[str] = []
        try:
            lock = FileLock(
                self.root / self.STEAL_LOCK, timeout_s=5.0, stale_s=10.0
            )
            with lock:
                now = time.time()
                for digest in digests:
                    if len(stolen) >= n:
                        break
                    lease = self.read(digest)
                    if lease is not None and not lease.expired(now):
                        continue  # owner came back to life
                    # Remove the dead lease file whether it decoded
                    # (expired) or not (torn write): both block the
                    # O_EXCL re-claim.  A since-released lease unlinks
                    # as a no-op.
                    try:
                        self.path_for(digest).unlink()
                    except OSError:
                        pass
                    if self.claim(digest):
                        stolen.append(digest)
        except TimeoutError:
            # Another runner is mid-steal and stuck past our patience;
            # come back on the next drain iteration.
            return stolen
        return stolen

    # -- keep-alive ----------------------------------------------------
    def heartbeat(self) -> None:
        """Refresh every held lease's ``heartbeat_at`` (temp + replace).

        A held lease that disappeared or changed owner (stolen after an
        undeserved expiry, e.g. a laptop suspend) is silently dropped
        from the held set -- the thief owns the cell now and the
        artifact cache deduplicates whatever both compute.
        """
        now = time.time()
        for digest in self.held():
            lease = self.read(digest)
            if lease is None or lease.runner != self.runner:
                with self._guard:
                    self._held.discard(digest)
                continue
            payload = self._payload(
                digest, acquired_at=lease.acquired_at, heartbeat_at=now
            )
            tmp = self.root / f".hb.{os.getpid()}.tmp"
            try:
                tmp.write_bytes(payload)
                os.replace(tmp, self.path_for(digest))
            except OSError:
                pass

    # -- release -------------------------------------------------------
    def release(self, digest: str) -> None:
        """Drop one held lease (only if still ours)."""
        with self._guard:
            self._held.discard(digest)
        lease = self.read(digest)
        if lease is not None and lease.runner == self.runner:
            try:
                self.path_for(digest).unlink()
            except OSError:
                pass

    def release_all(self) -> None:
        """Drop every lease this runner still holds (crash-path cleanup)."""
        for digest in self.held():
            self.release(digest)

    def _payload(self, digest: str, acquired_at: float, heartbeat_at: float) -> bytes:
        return json.dumps(
            {
                "digest": digest,
                "runner": self.runner,
                "pid": os.getpid(),
                "acquired_at": acquired_at,
                "heartbeat_at": heartbeat_at,
                "ttl": self.ttl,
            },
            sort_keys=True,
        ).encode()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LeaseDir(root={str(self.root)!r}, runner={self.runner!r}, "
            f"ttl={self.ttl:g})"
        )
