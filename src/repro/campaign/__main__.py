"""Campaign CLI: expand, run, inspect and aggregate campaign files.

::

    python -m repro.campaign expand CAMPAIGN            # cell table
    python -m repro.campaign run CAMPAIGN --jobs 4      # execute (resumable)
    python -m repro.campaign run CAMPAIGN --limit 10    # next 10 pending cells
    python -m repro.campaign run CAMPAIGN --tier process+shm
    python -m repro.campaign drain CAMPAIGN --runners 2 # cooperative fleet
    python -m repro.campaign drain CAMPAIGN             # join an ongoing drain
    python -m repro.campaign status CAMPAIGN            # manifest counts
    python -m repro.campaign report CAMPAIGN --group-by mesh
    python -m repro.campaign report CAMPAIGN --format json > cells.json
    python -m repro.campaign prune CAMPAIGN --dry-run   # retire artifacts+manifest

``CAMPAIGN`` is a path to a ``.toml``/``.json`` campaign file or the name
of a bundled campaign (``clos``, ``fig07``, ``fig12``, ``figswf``,
``multishape``, ``smoke`` -- see ``src/repro/campaign/data/``).  Results land in the
standard artifact cache (``--cache-dir`` / ``$REPRO_CACHE_DIR``); the
campaign manifest lives under ``<cache>/campaigns/`` and re-``run``\\ ning
an interrupted campaign resumes from it with every completed cell served
warm.

``--tier`` picks the engine's execution tier (default ``auto``: tiny
pending grids run in-process, big ones fan out over workers, with the
shared trace segment whenever ref workloads benefit); results and
artifacts are identical for every tier.  ``drain`` is the cooperative
mode: every ``drain`` process pointed at the same campaign and cache
root claims pending cells through per-cell lease files (no duplicated
compute, dead runners' leases stolen after a TTL), so a fleet finishes
one campaign together -- ``--runners N`` spawns such a fleet locally.
``report --format json|csv``
exports the completed cells for notebooks; ``prune`` deletes a
campaign's artifacts and manifest in one step (``--dry-run`` first).
See ``docs/campaign-format.md`` for the complete file-format reference.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.campaign.expand import expand
from repro.campaign.manifest import CampaignManifest, manifest_path
from repro.campaign.model import (
    CampaignError,
    bundled_campaign_names,
    bundled_campaign_path,
    load_campaign,
)
from repro.campaign.report import (
    REPORT_FORMATS,
    export_fairness_report,
    export_report,
    format_campaign_report,
    format_fairness_report,
    format_campaign_status,
    format_expansion,
)
from repro.campaign.lease import DEFAULT_LEASE_TTL
from repro.campaign.runner import drain_campaign, prune_campaign, run_campaign
from repro.runner import ResultCache
from repro.runner.engine import TIERS

__all__ = ["main", "resolve_campaign_path"]


def resolve_campaign_path(arg: str) -> Path:
    """A filesystem path as-is, else a bundled campaign by name."""
    path = Path(arg)
    if path.is_file():
        return path
    try:
        return bundled_campaign_path(arg)
    except KeyError:
        raise FileNotFoundError(
            f"no campaign file {arg!r} and no bundled campaign of that name; "
            f"bundled: {', '.join(bundled_campaign_names())}"
        ) from None


def _open(args) -> tuple:
    """(campaign, cache) for a parsed command line."""
    campaign = load_campaign(resolve_campaign_path(args.campaign))
    cache = None if getattr(args, "no_cache", False) else ResultCache(args.cache_dir)
    return campaign, cache


def _manifest_for(campaign, expansion, cache) -> CampaignManifest:
    path = (
        manifest_path(cache.root, campaign.name, expansion.digest)
        if cache is not None
        else None
    )
    return CampaignManifest.open(path, campaign.name, expansion.digest)


def _expand(args) -> int:
    campaign, cache = _open(args)
    expansion = expand(campaign, store=cache.traces if cache else None)
    print(format_expansion(expansion, _manifest_for(campaign, expansion, cache)))
    return 0


def _cell_progress(quiet: bool):
    """Per-cell progress printer shared by ``run`` and ``drain``."""

    def progress(done: int, total: int, cell) -> None:
        if not quiet:
            tag = "cache" if cell.cached else f"{cell.elapsed:.2f}s"
            print(
                f"[{done}/{total}] {cell.summary.pattern} | "
                f"{'x'.join(str(n) for n in cell.summary.mesh_shape)} | "
                f"{cell.summary.allocator} @ {cell.summary.load_factor:g} ({tag})",
                flush=True,
            )

    return progress


def _run(args) -> int:
    campaign, cache = _open(args)
    progress = _cell_progress(args.quiet)

    run = run_campaign(
        campaign,
        cache=cache,
        jobs=args.jobs,
        limit=args.limit,
        progress=progress,
        tier=args.tier,
    )
    print(run.summary_line())
    if run.tier_decision is not None:
        print(f"[tier] {run.tier_decision.describe()}")
    if cache is not None:
        print(cache.stats_line())
    return 0


def _drain(args) -> int:
    if args.runners > 1:
        return _drain_fleet(args)
    campaign, cache = _open(args)
    drain = drain_campaign(
        campaign,
        cache=cache,
        runner=args.runner_id,
        jobs=args.jobs,
        batch=args.batch,
        lease_ttl=args.lease_ttl,
        progress=_cell_progress(args.quiet),
        tier=args.tier,
    )
    print(drain.summary_line())
    if drain.tier_decisions:
        print(f"[tier] {drain.tier_decisions[0].describe()}")
    print(cache.stats_line())
    return 0


def _drain_fleet(args) -> int:
    """Spawn ``--runners N`` cooperating drain processes and supervise.

    Each child is this very CLI with ``--runners 1`` and a derived
    ``--runner-id``; the children coordinate purely through the shared
    cache root, exactly as runners on separate hosts would.  The parent
    waits for all of them, then reports the merged manifest state plus a
    duplicate-compute count (cells computed more than once -- zero under
    the lease protocol short of lease-TTL steals racing a live runner).
    """
    import os
    import socket
    import subprocess

    base = args.runner_id or f"{socket.gethostname()}-{os.getpid()}"
    common = [
        sys.executable,
        "-m",
        "repro.campaign",
        "drain",
        args.campaign,
        "--runners",
        "1",
        "--jobs",
        str(args.jobs),
        "--batch",
        str(args.batch),
        "--lease-ttl",
        str(args.lease_ttl),
    ]
    if args.cache_dir is not None:
        common += ["--cache-dir", args.cache_dir]
    if args.tier is not None:
        common += ["--tier", args.tier]
    if args.quiet:
        common += ["--quiet"]
    procs = [
        subprocess.Popen(common + ["--runner-id", f"{base}-r{i}"])
        for i in range(args.runners)
    ]
    codes = [p.wait() for p in procs]

    campaign, cache = _open(args)
    expansion = expand(campaign, store=cache.traces)
    manifest = _manifest_for(campaign, expansion, cache)
    counts = manifest.counts([c.digest for c in expansion.cells])
    fleet = {f"{base}-r{i}" for i in range(args.runners)}
    fleet_misses = sum(
        rec.get("misses", 0)
        for rec in manifest.runs
        if rec.get("mode") == "drain" and rec.get("runner") in fleet
    )
    duplicates = max(0, fleet_misses - counts["computed"])
    print(
        f"fleet of {args.runners} runners: {counts['done']}/{counts['total']} "
        f"cells done ({counts['computed']} computed, {counts['cached']} cached); "
        f"fleet computed {fleet_misses} cells, duplicates={duplicates}"
    )
    return max(codes, default=0)


def _status(args) -> int:
    campaign, cache = _open(args)
    expansion = expand(campaign, store=cache.traces if cache else None)
    print(format_campaign_status(expansion, _manifest_for(campaign, expansion, cache)))
    return 0


def _report(args) -> int:
    campaign, cache = _open(args)
    if cache is None:
        print("report needs the artifact cache (drop --no-cache)", file=sys.stderr)
        return 2
    expansion = expand(campaign, store=cache.traces)
    if args.fairness:
        shaping = [
            flag
            for flag, value in (
                ("--group-by", args.group_by),
                ("--rows", args.rows),
                ("--cols", args.cols),
            )
            if value is not None
        ]
        if args.metric != "mean_response":
            shaping.append("--metric")
        if shaping:
            print(
                f"{'/'.join(shaping)} do not apply to the fairness panel "
                "(it is always grouped by scheduler x allocator x load)",
                file=sys.stderr,
            )
            return 2
        if args.format != "table":
            print(export_fairness_report(expansion, cache, fmt=args.format))
        else:
            print(format_fairness_report(expansion, cache))
        return 0
    if args.format != "table":
        # json/csv are the flat per-cell records; the pivot-shaping
        # flags only apply to tables, so passing them is a mistake the
        # user should hear about rather than silently lose.
        shaping = [
            flag
            for flag, value in (
                ("--group-by", args.group_by),
                ("--rows", args.rows),
                ("--cols", args.cols),
            )
            if value is not None
        ]
        if shaping:
            print(
                f"{'/'.join(shaping)} only shape the table format; "
                f"--format {args.format} always exports the flat per-cell "
                "records (group in your notebook instead)",
                file=sys.stderr,
            )
            return 2
        print(export_report(expansion, cache, metric=args.metric, fmt=args.format))
        return 0
    group_by = args.group_by
    if group_by is None:
        # Default to the machine axis, whichever spelling the campaign
        # uses; campaigns always have at least the four required axes.
        names = expansion.axis_names
        group_by = next(
            (a for a in ("mesh", "topology") if a in names), names[0]
        )
    print(
        format_campaign_report(
            expansion,
            cache,
            group_by=group_by,
            metric=args.metric,
            rows_axis=args.rows,
            cols_axis=args.cols,
        )
    )
    return 0


def _prune(args) -> int:
    campaign, cache = _open(args)
    if cache is None:
        print("prune needs the artifact cache (drop --no-cache)", file=sys.stderr)
        return 2
    removed, manifest_file = prune_campaign(campaign, cache, dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    manifest_note = (
        f" and its manifest ({manifest_file})"
        if manifest_file is not None
        else " (no manifest on disk)"
    )
    print(
        f"{verb} {len(removed)} artifacts of campaign "
        f"{campaign.name!r}{manifest_note}"
    )
    if removed and not args.dry_run:
        print("run 'python -m repro.runner vacuum' to drop traces no "
              "remaining artifact references")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Expand, run and aggregate declarative campaign files "
        "(see src/repro/campaign/data/ for bundled examples).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p) -> None:
        p.add_argument(
            "campaign",
            help="campaign file path, or a bundled campaign name "
            f"({', '.join(bundled_campaign_names()) or 'none bundled'})",
        )
        p.add_argument(
            "--cache-dir",
            default=None,
            help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
        )

    p_expand = sub.add_parser("expand", help="print the expanded cell table")
    add_common(p_expand)

    p_run = sub.add_parser("run", help="run the campaign (resumes from the manifest)")
    add_common(p_run)
    p_run.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: auto-tuned from usable CPUs and "
        "the manifest's recorded cell cost; 1 = serial)",
    )
    p_run.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="run at most N pending cells (incremental execution)",
    )
    p_run.add_argument(
        "--no-cache",
        action="store_true",
        help="run without the artifact cache (nothing persisted or resumable)",
    )
    p_run.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    p_run.add_argument(
        "--tier",
        default=None,
        choices=TIERS,
        help="execution tier (default: the campaign file's tier, else "
        "'auto'); results are identical for every tier",
    )

    p_drain = sub.add_parser(
        "drain",
        help="cooperatively drain the campaign (N runners, one cache root, "
        "no duplicated compute)",
    )
    add_common(p_drain)
    p_drain.add_argument(
        "--runners",
        type=int,
        default=1,
        metavar="N",
        help="spawn N cooperating local runner processes (default: 1 = "
        "join the drain as a single runner)",
    )
    p_drain.add_argument(
        "--runner-id",
        default=None,
        help="stable runner identifier for leases and the manifest "
        "(default: <host>-<pid>; with --runners N the fleet derives "
        "<id>-r0..rN-1)",
    )
    p_drain.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="engine worker processes per runner (default: 1 -- the "
        "runners themselves are the parallelism)",
    )
    p_drain.add_argument(
        "--batch",
        type=int,
        default=8,
        metavar="N",
        help="cells claimed per lease batch (default: 8)",
    )
    p_drain.add_argument(
        "--lease-ttl",
        type=float,
        default=DEFAULT_LEASE_TTL,
        metavar="SECONDS",
        help="seconds without heartbeats before a runner's leases can be "
        f"stolen (default: {DEFAULT_LEASE_TTL:g})",
    )
    p_drain.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    p_drain.add_argument(
        "--tier",
        default=None,
        choices=TIERS,
        help="execution tier per batch (default: the campaign file's "
        "tier, else 'auto')",
    )

    p_status = sub.add_parser("status", help="completion counts from the manifest")
    add_common(p_status)

    p_report = sub.add_parser(
        "report", help="aggregate completed cells into axis-grouped tables"
    )
    add_common(p_report)
    p_report.add_argument(
        "--group-by",
        default=None,
        help="axis to group tables by (default: the machine axis -- mesh "
        "or topology; table format only)",
    )
    p_report.add_argument(
        "--metric",
        default="mean_response",
        help="RunSummary metric to aggregate (default: mean_response)",
    )
    p_report.add_argument(
        "--rows",
        default=None,
        help="axis for table rows (default: allocator, or the first free axis)",
    )
    p_report.add_argument(
        "--cols",
        default=None,
        help="axis for table columns (default: load, or the first free axis)",
    )
    p_report.add_argument(
        "--format",
        default="table",
        choices=REPORT_FORMATS,
        help="output format: human tables, or json/csv cell records for "
        "notebooks (default: table)",
    )
    p_report.add_argument(
        "--fairness",
        action="store_true",
        help="per-tenant fairness panel (slowdown p50/p95/p99/max, "
        "max-min ratio, Jain's index) grouped by scheduler x allocator "
        "x load instead of the metric pivot",
    )

    p_prune = sub.add_parser(
        "prune",
        help="retire a campaign: delete its cached artifacts and its manifest",
    )
    add_common(p_prune)
    p_prune.add_argument(
        "--dry-run", action="store_true", help="report what would be removed"
    )

    args = parser.parse_args(argv)
    if args.command in ("run", "drain") and args.jobs is not None and args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.command == "drain":
        for flag, value, floor in (
            ("--runners", args.runners, 1),
            ("--batch", args.batch, 1),
        ):
            if value < floor:
                print(f"{flag} must be >= {floor}, got {value}", file=sys.stderr)
                return 2
        if args.lease_ttl <= 0:
            print(f"--lease-ttl must be > 0, got {args.lease_ttl:g}", file=sys.stderr)
            return 2
    handler = {
        "expand": _expand,
        "run": _run,
        "drain": _drain,
        "status": _status,
        "report": _report,
        "prune": _prune,
    }[args.command]
    try:
        return handler(args)
    except (CampaignError, FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
