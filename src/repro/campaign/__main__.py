"""Campaign CLI: expand, run, inspect and aggregate campaign files.

::

    python -m repro.campaign expand CAMPAIGN            # cell table
    python -m repro.campaign run CAMPAIGN --jobs 4      # execute (resumable)
    python -m repro.campaign run CAMPAIGN --limit 10    # next 10 pending cells
    python -m repro.campaign run CAMPAIGN --tier process+shm
    python -m repro.campaign status CAMPAIGN            # manifest counts
    python -m repro.campaign report CAMPAIGN --group-by mesh
    python -m repro.campaign report CAMPAIGN --format json > cells.json
    python -m repro.campaign prune CAMPAIGN --dry-run   # retire artifacts+manifest

``CAMPAIGN`` is a path to a ``.toml``/``.json`` campaign file or the name
of a bundled campaign (``clos``, ``fig07``, ``fig12``, ``figswf``,
``multishape``, ``smoke`` -- see ``src/repro/campaign/data/``).  Results land in the
standard artifact cache (``--cache-dir`` / ``$REPRO_CACHE_DIR``); the
campaign manifest lives under ``<cache>/campaigns/`` and re-``run``\\ ning
an interrupted campaign resumes from it with every completed cell served
warm.

``--tier`` picks the engine's execution tier (default ``auto``: tiny
pending grids run in-process, big ones fan out over workers, with the
shared trace segment whenever ref workloads benefit); results and
artifacts are identical for every tier.  ``report --format json|csv``
exports the completed cells for notebooks; ``prune`` deletes a
campaign's artifacts and manifest in one step (``--dry-run`` first).
See ``docs/campaign-format.md`` for the complete file-format reference.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.campaign.expand import expand
from repro.campaign.manifest import CampaignManifest, manifest_path
from repro.campaign.model import (
    CampaignError,
    bundled_campaign_names,
    bundled_campaign_path,
    load_campaign,
)
from repro.campaign.report import (
    REPORT_FORMATS,
    export_report,
    format_campaign_report,
    format_campaign_status,
    format_expansion,
)
from repro.campaign.runner import prune_campaign, run_campaign
from repro.runner import ResultCache
from repro.runner.engine import TIERS

__all__ = ["main", "resolve_campaign_path"]


def resolve_campaign_path(arg: str) -> Path:
    """A filesystem path as-is, else a bundled campaign by name."""
    path = Path(arg)
    if path.is_file():
        return path
    try:
        return bundled_campaign_path(arg)
    except KeyError:
        raise FileNotFoundError(
            f"no campaign file {arg!r} and no bundled campaign of that name; "
            f"bundled: {', '.join(bundled_campaign_names())}"
        ) from None


def _open(args) -> tuple:
    """(campaign, cache) for a parsed command line."""
    campaign = load_campaign(resolve_campaign_path(args.campaign))
    cache = None if getattr(args, "no_cache", False) else ResultCache(args.cache_dir)
    return campaign, cache


def _manifest_for(campaign, expansion, cache) -> CampaignManifest:
    path = (
        manifest_path(cache.root, campaign.name, expansion.digest)
        if cache is not None
        else None
    )
    return CampaignManifest.open(path, campaign.name, expansion.digest)


def _expand(args) -> int:
    campaign, cache = _open(args)
    expansion = expand(campaign, store=cache.traces if cache else None)
    print(format_expansion(expansion, _manifest_for(campaign, expansion, cache)))
    return 0


def _run(args) -> int:
    campaign, cache = _open(args)

    def progress(done: int, total: int, cell) -> None:
        if not args.quiet:
            tag = "cache" if cell.cached else f"{cell.elapsed:.2f}s"
            print(
                f"[{done}/{total}] {cell.summary.pattern} | "
                f"{'x'.join(str(n) for n in cell.summary.mesh_shape)} | "
                f"{cell.summary.allocator} @ {cell.summary.load_factor:g} ({tag})",
                flush=True,
            )

    run = run_campaign(
        campaign,
        cache=cache,
        jobs=args.jobs,
        limit=args.limit,
        progress=progress,
        tier=args.tier,
    )
    print(run.summary_line())
    if run.tier_decision is not None:
        print(f"[tier] {run.tier_decision.describe()}")
    if cache is not None:
        print(cache.stats_line())
    return 0


def _status(args) -> int:
    campaign, cache = _open(args)
    expansion = expand(campaign, store=cache.traces if cache else None)
    print(format_campaign_status(expansion, _manifest_for(campaign, expansion, cache)))
    return 0


def _report(args) -> int:
    campaign, cache = _open(args)
    if cache is None:
        print("report needs the artifact cache (drop --no-cache)", file=sys.stderr)
        return 2
    expansion = expand(campaign, store=cache.traces)
    if args.format != "table":
        # json/csv are the flat per-cell records; the pivot-shaping
        # flags only apply to tables, so passing them is a mistake the
        # user should hear about rather than silently lose.
        shaping = [
            flag
            for flag, value in (
                ("--group-by", args.group_by),
                ("--rows", args.rows),
                ("--cols", args.cols),
            )
            if value is not None
        ]
        if shaping:
            print(
                f"{'/'.join(shaping)} only shape the table format; "
                f"--format {args.format} always exports the flat per-cell "
                "records (group in your notebook instead)",
                file=sys.stderr,
            )
            return 2
        print(export_report(expansion, cache, metric=args.metric, fmt=args.format))
        return 0
    group_by = args.group_by
    if group_by is None:
        # Default to the machine axis, whichever spelling the campaign
        # uses; campaigns always have at least the four required axes.
        names = expansion.axis_names
        group_by = next(
            (a for a in ("mesh", "topology") if a in names), names[0]
        )
    print(
        format_campaign_report(
            expansion,
            cache,
            group_by=group_by,
            metric=args.metric,
            rows_axis=args.rows,
            cols_axis=args.cols,
        )
    )
    return 0


def _prune(args) -> int:
    campaign, cache = _open(args)
    if cache is None:
        print("prune needs the artifact cache (drop --no-cache)", file=sys.stderr)
        return 2
    removed, manifest_file = prune_campaign(campaign, cache, dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    manifest_note = (
        f" and its manifest ({manifest_file})"
        if manifest_file is not None
        else " (no manifest on disk)"
    )
    print(
        f"{verb} {len(removed)} artifacts of campaign "
        f"{campaign.name!r}{manifest_note}"
    )
    if removed and not args.dry_run:
        print("run 'python -m repro.runner vacuum' to drop traces no "
              "remaining artifact references")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Expand, run and aggregate declarative campaign files "
        "(see src/repro/campaign/data/ for bundled examples).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p) -> None:
        p.add_argument(
            "campaign",
            help="campaign file path, or a bundled campaign name "
            f"({', '.join(bundled_campaign_names()) or 'none bundled'})",
        )
        p.add_argument(
            "--cache-dir",
            default=None,
            help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
        )

    p_expand = sub.add_parser("expand", help="print the expanded cell table")
    add_common(p_expand)

    p_run = sub.add_parser("run", help="run the campaign (resumes from the manifest)")
    add_common(p_run)
    p_run.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default: 1 = serial)"
    )
    p_run.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="run at most N pending cells (incremental execution)",
    )
    p_run.add_argument(
        "--no-cache",
        action="store_true",
        help="run without the artifact cache (nothing persisted or resumable)",
    )
    p_run.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    p_run.add_argument(
        "--tier",
        default=None,
        choices=TIERS,
        help="execution tier (default: the campaign file's tier, else "
        "'auto'); results are identical for every tier",
    )

    p_status = sub.add_parser("status", help="completion counts from the manifest")
    add_common(p_status)

    p_report = sub.add_parser(
        "report", help="aggregate completed cells into axis-grouped tables"
    )
    add_common(p_report)
    p_report.add_argument(
        "--group-by",
        default=None,
        help="axis to group tables by (default: the machine axis -- mesh "
        "or topology; table format only)",
    )
    p_report.add_argument(
        "--metric",
        default="mean_response",
        help="RunSummary metric to aggregate (default: mean_response)",
    )
    p_report.add_argument(
        "--rows",
        default=None,
        help="axis for table rows (default: allocator, or the first free axis)",
    )
    p_report.add_argument(
        "--cols",
        default=None,
        help="axis for table columns (default: load, or the first free axis)",
    )
    p_report.add_argument(
        "--format",
        default="table",
        choices=REPORT_FORMATS,
        help="output format: human tables, or json/csv cell records for "
        "notebooks (default: table)",
    )

    p_prune = sub.add_parser(
        "prune",
        help="retire a campaign: delete its cached artifacts and its manifest",
    )
    add_common(p_prune)
    p_prune.add_argument(
        "--dry-run", action="store_true", help="report what would be removed"
    )

    args = parser.parse_args(argv)
    if args.command == "run" and args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    handler = {
        "expand": _expand,
        "run": _run,
        "status": _status,
        "report": _report,
        "prune": _prune,
    }[args.command]
    try:
        return handler(args)
    except (CampaignError, FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
