"""The campaign manifest: resumable completion state next to the cache.

A campaign run writes ``<cache-root>/campaigns/<name>-<digest12>.json``
recording, per cell digest, whether the cell completed, whether it came
from the artifact cache, and its compute time -- plus one entry per
``run`` invocation with wall time and hit/miss counts.  The file is
flushed through a temp file + :func:`os.replace` after every completed
cell, so an interrupted run leaves a valid manifest behind and the next
``run`` resumes exactly where it stopped (completed cells are warm in
the artifact cache; the manifest is what lets ``status`` say so without
touching a single artifact).

The filename carries the first 12 hex chars of the campaign digest, so
editing a campaign (or re-scaling it) starts a fresh manifest instead of
silently mixing state from two different cell grids; the full digest is
also stored inside and verified on load.

**Concurrency.**  One manifest file may be flushed by several processes
at once -- cooperating ``drain`` runners, or simply two ``run``
invocations racing.  :meth:`CampaignManifest.flush` is therefore a
read-merge-write under a lock file (:class:`~repro.campaign.lease.FileLock`):
the on-disk state is re-read inside the lock, merged cell-by-cell
(:meth:`CampaignManifest.merge` -- a computed record always beats a
cache-hit record, run history is unioned, runner heartbeats keep the
freshest timestamp), and the result lands via temp file +
:func:`os.replace`.  No runner's completions can clobber another's, and
a crash at any instant leaves either the old or the new file -- never a
torn one.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["CampaignManifest", "manifest_path", "MANIFEST_DIRNAME"]

#: Subdirectory of the cache root holding campaign manifests.
MANIFEST_DIRNAME = "campaigns"

#: Manifest schema version.
MANIFEST_FORMAT = 1


def manifest_path(cache_root: str | Path, name: str, digest: str) -> Path:
    """Manifest file for a campaign identified by name + expansion digest."""
    return Path(cache_root) / MANIFEST_DIRNAME / f"{name}-{digest[:12]}.json"


def _prefer(new: dict, old: dict) -> bool:
    """Whether ``new`` should replace ``old`` when merging cell records.

    Same precedence :meth:`CampaignManifest.mark_done` applies in
    memory: a done record beats anything else, a computed record beats a
    cache hit (its ``elapsed`` is real), and between equals the earlier
    ``finished_at`` -- the original completion -- wins.
    """
    if not isinstance(new, dict):
        return False
    if (new.get("status") == "done") != (old.get("status") == "done"):
        return new.get("status") == "done"
    if new.get("cached", True) != old.get("cached", True):
        return not new.get("cached", True)
    return new.get("finished_at", 0.0) < old.get("finished_at", 0.0)


@dataclass
class CampaignManifest:
    """Mutable completion record of one expanded campaign.

    ``path=None`` keeps the manifest purely in memory (used when running
    without a cache); otherwise :meth:`flush` persists it atomically.
    """

    name: str
    campaign_digest: str
    path: Path | None = None
    cells: dict = field(default_factory=dict)  # cell digest -> record dict
    runs: list = field(default_factory=list)
    runners: dict = field(default_factory=dict)  # runner id -> heartbeat record
    created_at: float = 0.0
    updated_at: float = 0.0
    #: mtime_ns of the on-disk file as of our last read or write; lets
    #: :meth:`flush` skip the merge read-back when nobody else wrote.
    _disk_mtime_ns: int | None = None

    # -- load/store ----------------------------------------------------
    @classmethod
    def open(cls, path: Path | None, name: str, campaign_digest: str) -> "CampaignManifest":
        """Load the manifest at ``path``, or start a fresh one.

        A file whose stored digest does not match ``campaign_digest``
        (possible only if someone renamed a manifest by hand, since the
        digest is part of the filename) is discarded rather than trusted.
        """
        manifest = cls(
            name=name,
            campaign_digest=campaign_digest,
            path=Path(path) if path is not None else None,
            created_at=time.time(),
        )
        if path is None or not Path(path).is_file():
            return manifest
        try:
            data = json.loads(Path(path).read_text())
            mtime_ns = Path(path).stat().st_mtime_ns
        except (OSError, json.JSONDecodeError):
            return manifest
        if (
            not isinstance(data, dict)
            or data.get("format") != MANIFEST_FORMAT
            or data.get("campaign_digest") != campaign_digest
        ):
            return manifest
        manifest.cells = dict(data.get("cells", {}))
        manifest.runs = list(data.get("runs", []))
        manifest.runners = dict(data.get("runners", {}))
        manifest.created_at = data.get("created_at", manifest.created_at)
        manifest.updated_at = data.get("updated_at", 0.0)
        manifest._disk_mtime_ns = mtime_ns
        return manifest

    def to_dict(self) -> dict:
        data = {
            "format": MANIFEST_FORMAT,
            "name": self.name,
            "campaign_digest": self.campaign_digest,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "cells": self.cells,
            "runs": self.runs,
        }
        # Written only once a runner has heartbeated, so single-process
        # manifests keep their exact pre-drain shape.
        if self.runners:
            data["runners"] = self.runners
        return data

    def merge(self, data: dict) -> None:
        """Fold another snapshot of this manifest into this one.

        The merge rules mirror :meth:`mark_done`: per cell, a *computed*
        record always beats a cache-hit record, and between two records
        of the same kind the earlier ``finished_at`` (the original) is
        kept.  Run history is unioned (exact-duplicate records -- our
        own, read back from disk -- collapse), ordered by start time;
        runner heartbeats keep the freshest timestamp per runner.  Used
        by :meth:`flush` against the on-disk state and by bundle import
        against a bundled manifest.
        """
        if not isinstance(data, dict):
            return
        for digest, rec in (data.get("cells") or {}).items():
            mine = self.cells.get(digest)
            if mine is None or _prefer(rec, mine):
                self.cells[digest] = rec
        merged = list(self.runs)
        for rec in data.get("runs") or []:
            if rec not in merged:
                merged.append(rec)
        merged.sort(key=lambda rec: rec.get("started_at", 0.0))
        self.runs = merged
        for runner, rec in (data.get("runners") or {}).items():
            mine = self.runners.get(runner)
            if mine is None or rec.get("heartbeat_at", 0.0) > mine.get(
                "heartbeat_at", 0.0
            ):
                self.runners[runner] = rec

    def refresh(self) -> None:
        """Merge the current on-disk state into this manifest (read-only).

        What a drain runner's poll loop calls between batches: other
        runners' completions become visible without writing anything.
        Skipped when the file's mtime shows nobody wrote since our last
        read or write; invalid/foreign files are ignored, exactly as in
        :meth:`open`.
        """
        if self.path is None or not self.path.is_file():
            return
        try:
            mtime_ns = self.path.stat().st_mtime_ns
            if mtime_ns == self._disk_mtime_ns:
                return
            data = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            return
        if (
            isinstance(data, dict)
            and data.get("format") == MANIFEST_FORMAT
            and data.get("campaign_digest") == self.campaign_digest
        ):
            self.merge(data)
            self._disk_mtime_ns = mtime_ns

    def flush(self) -> None:
        """Concurrency-safely persist (no-op for in-memory manifests).

        Under the manifest's lock file: re-read whatever is on disk
        (skipped when the file's mtime proves we were the last writer),
        :meth:`merge` it, then write through a temp file +
        :func:`os.replace`.  Concurrent runners flushing disjoint cells
        therefore both land, and readers never observe a torn file.
        """
        if self.path is None:
            return
        from repro.campaign.lease import FileLock

        self.updated_at = time.time()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.parent / f"{self.path.name}.tmp{os.getpid()}"
        with FileLock(self.path.with_name(self.path.name + ".lock")):
            try:
                disk_mtime_ns = self.path.stat().st_mtime_ns
            except OSError:
                disk_mtime_ns = None
            if disk_mtime_ns is not None and disk_mtime_ns != self._disk_mtime_ns:
                try:
                    data = json.loads(self.path.read_text())
                except (OSError, json.JSONDecodeError):
                    data = None
                if (
                    isinstance(data, dict)
                    and data.get("format") == MANIFEST_FORMAT
                    and data.get("campaign_digest") == self.campaign_digest
                ):
                    self.merge(data)
            tmp.write_text(json.dumps(self.to_dict(), sort_keys=True))
            # The rename preserves the temp file's mtime, so stat it
            # *before* the replace: if someone overwrites us later, the
            # next flush sees a foreign mtime and merges.
            self._disk_mtime_ns = tmp.stat().st_mtime_ns
            os.replace(tmp, self.path)

    # -- cell state ----------------------------------------------------
    def heartbeat(self, runner: str) -> None:
        """Record (in memory) that ``runner`` is alive right now.

        Lands on disk with the next :meth:`flush`; merged across
        processes by freshest timestamp.  This is observability for
        ``status`` -- liveness for the claim protocol itself lives in
        the lease files (:mod:`repro.campaign.lease`), which expire
        per-cell.
        """
        self.runners[str(runner)] = {
            "heartbeat_at": time.time(),
            "pid": os.getpid(),
            "host": socket.gethostname(),
        }

    def is_done(self, digest: str) -> bool:
        return self.cells.get(digest, {}).get("status") == "done"

    def done_digests(self) -> set[str]:
        return {d for d, rec in self.cells.items() if rec.get("status") == "done"}

    def mark_done(
        self,
        digest: str,
        coords: dict,
        cached: bool,
        elapsed: float,
        runner: str | None = None,
    ) -> None:
        """Record a completed cell.

        A cache hit for a cell this manifest already saw *computed* adds
        no information, so the original compute record (its real
        ``elapsed``) is preserved -- warm re-runs must not erase the
        timings :meth:`mean_compute_seconds` calibrates the engine's
        ``auto`` tier with.  ``runner`` tags the record in drain mode so
        a multi-runner campaign shows who computed what.
        """
        prior = self.cells.get(digest)
        if (
            cached
            and prior is not None
            and prior.get("status") == "done"
            and not prior.get("cached", True)
        ):
            return
        record = {
            "status": "done",
            "coords": coords,
            "cached": bool(cached),
            "elapsed": float(elapsed),
            "finished_at": time.time(),
        }
        if runner is not None:
            record["runner"] = str(runner)
        self.cells[digest] = record

    def record_run(
        self,
        wall: float,
        hits: int,
        misses: int,
        n_selected: int,
        limit: int | None,
        tier: str | None = None,
        runner: str | None = None,
        mode: str | None = None,
    ) -> None:
        """Append one ``run``/``drain`` invocation's accounting.

        ``runner`` and ``mode`` (``"drain"``) are recorded only when
        given, keeping plain ``run`` records in their original shape.
        """
        record = {
            "started_at": time.time() - wall,
            "wall": float(wall),
            "hits": int(hits),
            "misses": int(misses),
            "n_selected": int(n_selected),
            "limit": limit,
        }
        if tier is not None:
            record["tier"] = tier
        if runner is not None:
            record["runner"] = str(runner)
        if mode is not None:
            record["mode"] = mode
        self.runs.append(record)

    def mean_compute_seconds(self) -> float | None:
        """Mean wall seconds of the cells this manifest saw *computed*.

        The calibration the engine's ``auto`` tier uses instead of
        probing: cells served from the cache (``cached``) carry no
        compute time and are excluded.  ``None`` until at least one cell
        has been computed.
        """
        samples = [
            rec.get("elapsed", 0.0)
            for rec in self.cells.values()
            if rec.get("status") == "done" and not rec.get("cached")
        ]
        if not samples:
            return None
        return sum(samples) / len(samples)

    # -- accounting ----------------------------------------------------
    def counts(self, cell_digests) -> dict:
        """Completion counts for the given expansion's cell digests."""
        cell_digests = list(cell_digests)
        done = cached = 0
        compute_s = 0.0
        for digest in cell_digests:
            rec = self.cells.get(digest)
            if rec is None or rec.get("status") != "done":
                continue
            done += 1
            if rec.get("cached"):
                cached += 1
            compute_s += rec.get("elapsed", 0.0)
        total = len(cell_digests)
        return {
            "total": total,
            "done": done,
            "pending": total - done,
            "cached": cached,
            "computed": done - cached,
            "compute_seconds": compute_s,
        }
