"""The campaign manifest: resumable completion state next to the cache.

A campaign run writes ``<cache-root>/campaigns/<name>-<digest12>.json``
recording, per cell digest, whether the cell completed, whether it came
from the artifact cache, and its compute time -- plus one entry per
``run`` invocation with wall time and hit/miss counts.  The file is
flushed through a temp file + :func:`os.replace` after every completed
cell, so an interrupted run leaves a valid manifest behind and the next
``run`` resumes exactly where it stopped (completed cells are warm in
the artifact cache; the manifest is what lets ``status`` say so without
touching a single artifact).

The filename carries the first 12 hex chars of the campaign digest, so
editing a campaign (or re-scaling it) starts a fresh manifest instead of
silently mixing state from two different cell grids; the full digest is
also stored inside and verified on load.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["CampaignManifest", "manifest_path", "MANIFEST_DIRNAME"]

#: Subdirectory of the cache root holding campaign manifests.
MANIFEST_DIRNAME = "campaigns"

#: Manifest schema version.
MANIFEST_FORMAT = 1


def manifest_path(cache_root: str | Path, name: str, digest: str) -> Path:
    """Manifest file for a campaign identified by name + expansion digest."""
    return Path(cache_root) / MANIFEST_DIRNAME / f"{name}-{digest[:12]}.json"


@dataclass
class CampaignManifest:
    """Mutable completion record of one expanded campaign.

    ``path=None`` keeps the manifest purely in memory (used when running
    without a cache); otherwise :meth:`flush` persists it atomically.
    """

    name: str
    campaign_digest: str
    path: Path | None = None
    cells: dict = field(default_factory=dict)  # cell digest -> record dict
    runs: list = field(default_factory=list)
    created_at: float = 0.0
    updated_at: float = 0.0

    # -- load/store ----------------------------------------------------
    @classmethod
    def open(cls, path: Path | None, name: str, campaign_digest: str) -> "CampaignManifest":
        """Load the manifest at ``path``, or start a fresh one.

        A file whose stored digest does not match ``campaign_digest``
        (possible only if someone renamed a manifest by hand, since the
        digest is part of the filename) is discarded rather than trusted.
        """
        manifest = cls(
            name=name,
            campaign_digest=campaign_digest,
            path=Path(path) if path is not None else None,
            created_at=time.time(),
        )
        if path is None or not Path(path).is_file():
            return manifest
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError):
            return manifest
        if (
            not isinstance(data, dict)
            or data.get("format") != MANIFEST_FORMAT
            or data.get("campaign_digest") != campaign_digest
        ):
            return manifest
        manifest.cells = dict(data.get("cells", {}))
        manifest.runs = list(data.get("runs", []))
        manifest.created_at = data.get("created_at", manifest.created_at)
        manifest.updated_at = data.get("updated_at", 0.0)
        return manifest

    def to_dict(self) -> dict:
        return {
            "format": MANIFEST_FORMAT,
            "name": self.name,
            "campaign_digest": self.campaign_digest,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "cells": self.cells,
            "runs": self.runs,
        }

    def flush(self) -> None:
        """Atomically persist (no-op for in-memory manifests)."""
        if self.path is None:
            return
        self.updated_at = time.time()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.parent / f"{self.path.name}.tmp{os.getpid()}"
        tmp.write_text(json.dumps(self.to_dict(), sort_keys=True))
        os.replace(tmp, self.path)

    # -- cell state ----------------------------------------------------
    def is_done(self, digest: str) -> bool:
        return self.cells.get(digest, {}).get("status") == "done"

    def done_digests(self) -> set[str]:
        return {d for d, rec in self.cells.items() if rec.get("status") == "done"}

    def mark_done(self, digest: str, coords: dict, cached: bool, elapsed: float) -> None:
        """Record a completed cell.

        A cache hit for a cell this manifest already saw *computed* adds
        no information, so the original compute record (its real
        ``elapsed``) is preserved -- warm re-runs must not erase the
        timings :meth:`mean_compute_seconds` calibrates the engine's
        ``auto`` tier with.
        """
        prior = self.cells.get(digest)
        if (
            cached
            and prior is not None
            and prior.get("status") == "done"
            and not prior.get("cached", True)
        ):
            return
        self.cells[digest] = {
            "status": "done",
            "coords": coords,
            "cached": bool(cached),
            "elapsed": float(elapsed),
            "finished_at": time.time(),
        }

    def record_run(
        self,
        wall: float,
        hits: int,
        misses: int,
        n_selected: int,
        limit: int | None,
        tier: str | None = None,
    ) -> None:
        """Append one ``run`` invocation's wall/cache/tier accounting."""
        record = {
            "started_at": time.time() - wall,
            "wall": float(wall),
            "hits": int(hits),
            "misses": int(misses),
            "n_selected": int(n_selected),
            "limit": limit,
        }
        if tier is not None:
            record["tier"] = tier
        self.runs.append(record)

    def mean_compute_seconds(self) -> float | None:
        """Mean wall seconds of the cells this manifest saw *computed*.

        The calibration the engine's ``auto`` tier uses instead of
        probing: cells served from the cache (``cached``) carry no
        compute time and are excluded.  ``None`` until at least one cell
        has been computed.
        """
        samples = [
            rec.get("elapsed", 0.0)
            for rec in self.cells.values()
            if rec.get("status") == "done" and not rec.get("cached")
        ]
        if not samples:
            return None
        return sum(samples) / len(samples)

    # -- accounting ----------------------------------------------------
    def counts(self, cell_digests) -> dict:
        """Completion counts for the given expansion's cell digests."""
        cell_digests = list(cell_digests)
        done = cached = 0
        compute_s = 0.0
        for digest in cell_digests:
            rec = self.cells.get(digest)
            if rec is None or rec.get("status") != "done":
                continue
            done += 1
            if rec.get("cached"):
                cached += 1
            compute_s += rec.get("elapsed", 0.0)
        total = len(cell_digests)
        return {
            "total": total,
            "done": done,
            "pending": total - done,
            "cached": cached,
            "computed": done - cached,
            "compute_seconds": compute_s,
        }
