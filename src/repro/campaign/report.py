"""Status and aggregation reports over expanded campaigns.

``status`` answers "how far along is this campaign?" from the manifest
without opening any artifact (the campaign must still be *expanded* to
know its cell digests, which re-resolves declared workload sources --
instant for synthetic axes, an SWF parse for file sources); ``report``
aggregates the *completed*
cells -- read straight from the artifact cache at summary level -- into
the plain-text comparison tables of :mod:`repro.analysis.tables`, grouped
by any axis: one pivot table per value of the grouping axis, cells
averaged over every axis not shown.  Grouping by ``mesh`` with exactly
two machine groups additionally emits the existing
``format_mesh_comparison`` ratio table, the same view the fig12/figswf
drivers print.
"""

from __future__ import annotations

import csv
import io
import json

from repro.analysis.tables import format_pivot, format_table
from repro.campaign.expand import CampaignCell, Expansion
from repro.campaign.manifest import CampaignManifest
from repro.runner import ResultCache

__all__ = [
    "completed_cells",
    "completed_rows",
    "export_report",
    "export_fairness_report",
    "fairness_rows",
    "format_campaign_report",
    "format_fairness_report",
    "format_campaign_status",
    "format_expansion",
    "REPORT_FORMATS",
]

#: ``report --format`` values: the human table plus two machine formats.
REPORT_FORMATS = ("table", "json", "csv")


def format_expansion(expansion: Expansion, manifest: CampaignManifest | None = None) -> str:
    """The cell table an ``expand`` invocation prints."""
    axis_names = expansion.axis_names
    rows = []
    for cell in expansion.cells:
        row = {"#": cell.index}
        row.update({axis: cell.coords[axis] for axis in axis_names})
        row["cell"] = cell.digest[:12]
        if manifest is not None:
            row["status"] = "done" if manifest.is_done(cell.digest) else "pending"
        rows.append(row)
    blocks = [expansion.summary()]
    for info in expansion.sources.values():
        blocks.append(f"workload {info.summary()}")
    blocks.append(format_table(rows, float_fmt="g"))
    return "\n".join(blocks)


def format_campaign_status(expansion: Expansion, manifest: CampaignManifest) -> str:
    """Completion counts plus per-invocation wall/cache accounting."""
    counts = manifest.counts([c.digest for c in expansion.cells])
    lines = [
        expansion.summary(),
        (
            f"{counts['done']}/{counts['total']} cells done "
            f"({counts['cached']} from cache, {counts['computed']} computed, "
            f"{counts['pending']} pending); "
            f"compute time {counts['compute_seconds']:.1f}s"
        ),
    ]
    if manifest.runs:
        # The runner column only appears once a drain has touched the
        # campaign, keeping single-process status output in its
        # original shape.
        has_runner = any(rec.get("runner") for rec in manifest.runs)
        run_rows = []
        for i, rec in enumerate(manifest.runs):
            row = {
                "run": i + 1,
                "cells": rec.get("n_selected", 0),
                "hits": rec.get("hits", 0),
                "misses": rec.get("misses", 0),
                "wall s": rec.get("wall", 0.0),
                "tier": rec.get("tier", ""),
            }
            if has_runner:
                row["runner"] = rec.get("runner", "")
            row["limit"] = rec.get("limit") if rec.get("limit") is not None else ""
            run_rows.append(row)
        lines.append(format_table(run_rows, float_fmt=".2f", title="run history"))
    else:
        lines.append("never run (no manifest entries)")
    if manifest.runners:
        import time as _time

        now = _time.time()
        beats = ", ".join(
            f"{rid} ({max(0.0, now - rec.get('heartbeat_at', 0.0)):.0f}s ago)"
            for rid, rec in sorted(manifest.runners.items())
        )
        lines.append(f"runners: {beats}")
    pending = [c for c in expansion.cells if not manifest.is_done(c.digest)]
    if pending:
        preview = ", ".join(str(dict(c.coords)) for c in pending[:3])
        more = f" (+{len(pending) - 3} more)" if len(pending) > 3 else ""
        lines.append(f"next pending: {preview}{more}")
    return "\n".join(lines)


def _check_metric(metric: str) -> None:
    """Reject unknown RunSummary metrics with the valid names listed."""
    from dataclasses import fields

    from repro.sched.stats import RunSummary

    known = {f.name for f in fields(RunSummary)}
    if metric not in known:
        raise ValueError(f"unknown metric {metric!r}; known: {sorted(known)}")


def completed_cells(
    expansion: Expansion, cache: ResultCache
) -> tuple[list[tuple[CampaignCell, object]], int]:
    """``(cell, RunSummary)`` for every cell with a cached artifact.

    Summary-level reads only (:meth:`ResultCache.peek`); returns the
    pairs in expansion order plus the number of cells still missing.
    """
    pairs = []
    missing = 0
    for cell in expansion.cells:
        try:
            result = cache.peek(cell.spec)
        except KeyError:  # ref spec whose trace never reached this store
            result = None
        if result is None:
            missing += 1
            continue
        pairs.append((cell, result.summary))
    return pairs, missing


def _check_metric_axis_collision(metric: str, axis_names: list[str]) -> None:
    """Reject metric names that shadow an axis.

    ``RunSummary`` fields like ``allocator`` share names with axes; a
    colliding metric would overwrite the cell's coordinate in the flat
    rows and duplicate the CSV header column, so fail loudly instead.
    """
    if metric in axis_names:
        raise ValueError(
            f"metric {metric!r} collides with the campaign's {metric!r} axis "
            "-- the flat rows would overwrite the cell coordinate with the "
            "summary value; pick a numeric metric (e.g. 'mean_response')"
        )


def completed_rows(
    expansion: Expansion, cache: ResultCache, metric: str = "mean_response"
) -> tuple[list[dict], int]:
    """Coordinate + metric rows for every completed cell.

    Each row is the cell's axis coordinates plus the requested
    :class:`RunSummary` metric -- exactly what
    :func:`repro.analysis.tables.format_pivot` consumes.
    """
    _check_metric(metric)
    _check_metric_axis_collision(metric, expansion.axis_names)
    pairs, missing = completed_cells(expansion, cache)
    rows = []
    for cell, summary in pairs:
        row = dict(cell.coords)
        row[metric] = getattr(summary, metric)
        rows.append(row)
    return rows, missing


def export_report(
    expansion: Expansion,
    cache: ResultCache,
    metric: str = "mean_response",
    fmt: str = "json",
) -> str:
    """Machine-readable campaign results (``report --format json|csv``).

    One flat record per *completed* cell -- its axis coordinates plus the
    requested :class:`~repro.sched.stats.RunSummary` metric -- exactly
    the shape notebooks want (``pandas.DataFrame(payload["cells"])`` or
    ``pandas.read_csv``).  JSON wraps the records with the campaign
    name, axis order, metric and pending count; CSV is the bare records
    with a header row (axes in declaration order, metric last).
    """
    rows, missing = completed_rows(expansion, cache, metric=metric)
    if fmt == "json":
        payload = {
            "campaign": expansion.campaign.name,
            "axes": expansion.axis_names,
            "metric": metric,
            "completed": len(rows),
            "pending": missing,
            "cells": rows,
        }
        return json.dumps(payload, indent=2, sort_keys=False)
    if fmt == "csv":
        out = io.StringIO()
        writer = csv.DictWriter(out, fieldnames=expansion.axis_names + [metric])
        writer.writeheader()
        writer.writerows(rows)
        return out.getvalue().rstrip("\n")
    raise ValueError(f"unknown report format {fmt!r}; known: {list(REPORT_FORMATS)}")


def _default_axis(preferred: str, axis_names: list[str], taken: tuple) -> str:
    """``preferred`` unless another role claimed it; else the first free axis."""
    if preferred in axis_names and preferred not in taken:
        return preferred
    for axis in axis_names:
        if axis not in taken:
            return axis
    raise ValueError(
        f"campaign has too few axes to pivot: {axis_names} with {taken} taken"
    )


def format_campaign_report(
    expansion: Expansion,
    cache: ResultCache,
    group_by: str = "mesh",
    metric: str = "mean_response",
    rows_axis: str | None = None,
    cols_axis: str | None = None,
) -> str:
    """Axis-grouped comparison tables over the completed cells.

    One pivot table per value of ``group_by``, averaging ``metric`` over
    every axis not shown.  Rows default to the ``allocator`` axis and
    columns to ``load``; when ``group_by`` claims one of those, the
    default slides to the first remaining axis, so every axis is
    groupable without extra flags.  Grouping by ``mesh`` with exactly
    two groups adds the pairwise machine-comparison ratio table.
    """
    _check_metric(metric)
    _check_metric_axis_collision(metric, expansion.axis_names)
    axis_names = expansion.axis_names
    if group_by not in axis_names:
        raise ValueError(
            f"cannot group by {group_by!r}: campaign axes are {axis_names}"
        )
    if rows_axis is None:
        rows_axis = _default_axis("allocator", axis_names, taken=(group_by,))
    if cols_axis is None:
        cols_axis = _default_axis("load", axis_names, taken=(group_by, rows_axis))
    for name, value in (("rows", rows_axis), ("cols", cols_axis)):
        if value not in axis_names:
            raise ValueError(
                f"cannot use {value!r} as {name}: campaign axes are {axis_names}"
            )
        if value == group_by:
            raise ValueError(f"{name} axis {value!r} is already the group-by axis")

    pairs, missing = completed_cells(expansion, cache)
    header = (
        f"{expansion.summary()}\n"
        f"report over {len(pairs)} completed cells"
        + (f" ({missing} pending -- run the campaign to fill them in)" if missing else "")
    )
    if not pairs:
        return header
    blocks = [header]
    group_values = []
    for cell in expansion.cells:
        value = cell.coords[group_by]
        if value not in group_values:
            group_values.append(value)
    for value in group_values:
        subset = []
        for cell, summary in pairs:
            if cell.coords[group_by] != value:
                continue
            row = dict(cell.coords)
            row[metric] = getattr(summary, metric)
            subset.append(row)
        if not subset:
            continue
        blocks.append(
            format_pivot(
                subset,
                row_key=rows_axis,
                col_key=cols_axis,
                value_key=metric,
                float_fmt=".2f",
                title=f"{metric} -- {group_by} = {value}",
            )
        )
    if group_by == "mesh" and len(group_values) == 2:
        comparison = _mesh_comparison(pairs, group_values, metric)
        if comparison:
            blocks.append(comparison)
    if group_by in ("mesh", "topology"):
        panel = _contiguity_panel(pairs, group_by, group_values, metric)
        if panel:
            blocks.append(panel)
    return "\n\n".join(blocks)


def _contiguity_panel(pairs, group_by: str, group_values, metric: str) -> str:
    """Random-vs-best placement table: does contiguity still matter?

    For every machine in the grouping axis, the scattered ``random``
    baseline's mean ``metric`` next to the best locality-aware
    allocator's, plus their ratio.  On a mesh the ratio is well above 1
    (the paper's contiguity result); if a Clos fabric's ratio sits near
    1, placement locality has stopped mattering on that machine -- the
    bundled ``clos`` campaign's headline question.  Empty when the
    campaign has no ``random`` allocator to serve as the baseline.
    """
    rows = []
    for value in group_values:
        by_alloc: dict[str, list[float]] = {}
        for cell, summary in pairs:
            if cell.coords[group_by] != value:
                continue
            by_alloc.setdefault(cell.coords["allocator"], []).append(
                float(getattr(summary, metric))
            )
        means = {a: sum(v) / len(v) for a, v in by_alloc.items()}
        random_mean = means.pop("random", None)
        if random_mean is None or not means:
            continue
        best_name, best_mean = min(means.items(), key=lambda kv: (kv[1], kv[0]))
        rows.append(
            {
                group_by: value,
                "random": random_mean,
                "best": best_name,
                "best value": best_mean,
                "random/best": random_mean / best_mean if best_mean else float("nan"),
            }
        )
    if not rows:
        return ""
    return format_table(
        rows,
        float_fmt=".2f",
        title=(
            f"contiguity check -- random vs best placement ({metric}); "
            "ratio near 1 = placement stopped mattering"
        ),
    )


# ----------------------------------------------------------------------
# Fairness panels (per-tenant slowdown, max-min ratio, Jain's index)
# ----------------------------------------------------------------------

#: Metric columns of a fairness row, in report order.
FAIRNESS_COLUMNS = ("tenants", "p50", "p95", "p99", "max", "max_min", "jain")


def _fairness_pairs(
    expansion: Expansion, cache: ResultCache
) -> tuple[list[tuple[CampaignCell, list]], int]:
    """``(cell, [JobResult, ...])`` for every completed cell.

    Unlike :func:`completed_cells` this needs the per-job records, so it
    reads full artifacts (:meth:`ResultCache.get`) -- the packed columns
    decode to job results without rerunning anything.
    """
    pairs = []
    missing = 0
    for cell in expansion.cells:
        try:
            result = cache.get(cell.spec)
        except KeyError:
            result = None
        if result is None:
            missing += 1
            continue
        pairs.append((cell, result.jobs))
    return pairs, missing


def _fairness_metrics(jobs) -> dict:
    from repro.analysis.fairness import fairness_summary

    s = fairness_summary(jobs)
    return {
        "tenants": s.n_tenants,
        "p50": s.p50,
        "p95": s.p95,
        "p99": s.p99,
        "max": s.max,
        "max_min": s.max_min,
        "jain": s.jain,
    }


def fairness_rows(
    expansion: Expansion, cache: ResultCache
) -> tuple[list[dict], int]:
    """One flat fairness record per completed cell.

    Each row carries the cell's axis coordinates plus the per-tenant
    slowdown distribution (p50/p95/p99/max over per-tenant means), the
    max-min ratio and Jain's index -- the machine-readable form behind
    ``report --fairness --format json|csv``.
    """
    pairs, missing = _fairness_pairs(expansion, cache)
    rows = []
    for cell, jobs in pairs:
        row = dict(cell.coords)
        row.update(_fairness_metrics(jobs))
        rows.append(row)
    return rows, missing


def export_fairness_report(
    expansion: Expansion, cache: ResultCache, fmt: str = "json"
) -> str:
    """Machine-readable fairness records (``report --fairness``).

    Same envelope as :func:`export_report`: JSON wraps the per-cell
    records with campaign name, axis order and completion counts; CSV is
    the bare records (axes in declaration order, fairness metrics last).
    """
    rows, missing = fairness_rows(expansion, cache)
    if fmt == "json":
        payload = {
            "campaign": expansion.campaign.name,
            "axes": expansion.axis_names,
            "metric": "fairness",
            "completed": len(rows),
            "pending": missing,
            "cells": rows,
        }
        return json.dumps(payload, indent=2, sort_keys=False)
    if fmt == "csv":
        out = io.StringIO()
        writer = csv.DictWriter(
            out, fieldnames=expansion.axis_names + list(FAIRNESS_COLUMNS)
        )
        writer.writeheader()
        writer.writerows(rows)
        return out.getvalue().rstrip("\n")
    raise ValueError(f"unknown report format {fmt!r}; known: {list(REPORT_FORMATS)}")


def format_fairness_report(expansion: Expansion, cache: ResultCache) -> str:
    """The fairness panel: who waits, grouped by scheduler x allocator x load.

    One table per machine (and, when a workload axis exists, per
    workload): rows are the scheduler x allocator x load combinations in
    expansion order, with job lists *merged* across every remaining axis
    (pattern, seed) before computing the per-tenant distribution -- so a
    combination's tenants are judged on all of their jobs in that
    context.  Columns answer the campaign's question directly: does p99
    slowdown stay flat (and Jain's index near 1) as load rises?
    """
    pairs, missing = _fairness_pairs(expansion, cache)
    header = (
        f"{expansion.summary()}\n"
        f"fairness report over {len(pairs)} completed cells"
        + (f" ({missing} pending -- run the campaign to fill them in)" if missing else "")
    )
    if not pairs:
        return header
    axis_names = expansion.axis_names
    machine_axis = next(
        (a for a in ("mesh", "topology") if a in axis_names), axis_names[0]
    )
    context_axes = [machine_axis] + (["workload"] if "workload" in axis_names else [])
    combo_axes = [a for a in ("scheduler", "allocator", "load") if a in axis_names]
    merged: dict[tuple, dict[tuple, list]] = {}
    for cell, jobs in pairs:
        context = tuple(cell.coords[a] for a in context_axes)
        combo = tuple(cell.coords[a] for a in combo_axes)
        merged.setdefault(context, {}).setdefault(combo, []).extend(jobs)
    blocks = [header]
    for context, combos in merged.items():
        rows = []
        for combo, jobs in combos.items():
            row = dict(zip(combo_axes, combo))
            row.update(_fairness_metrics(jobs))
            rows.append(row)
        title = "per-tenant slowdown -- " + ", ".join(
            f"{axis} = {value}" for axis, value in zip(context_axes, context)
        )
        blocks.append(
            format_table(
                rows,
                columns=combo_axes + list(FAIRNESS_COLUMNS),
                float_fmt=".2f",
                title=title,
            )
        )
    return "\n\n".join(blocks)


def _mesh_comparison(pairs, meshes, metric: str) -> str:
    """The fig12-style two-machine ratio table, via the existing helpers."""
    from repro.analysis.tables import format_mesh_comparison
    from repro.campaign.runner import group_sweep_results

    groups = group_sweep_results(pairs)
    baseline, other = groups.get(meshes[0]), groups.get(meshes[1])
    if not baseline or not other:
        return ""
    return format_mesh_comparison(baseline, other, metric=metric)
