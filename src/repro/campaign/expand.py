"""Campaign expansion: cross-product -> validated experiment specs.

:func:`expand` turns a :class:`~repro.campaign.model.Campaign` into the
ordered list of unique :class:`~repro.campaign.expand.CampaignCell`\\ s:
the cross-product of the declared axes (outermost axis first, in file
order), filtered by ``include``/``exclude``, patched by ``override``
blocks, deduplicated by spec digest, and validated cell-by-cell (a
2-D-only allocator on a 3-D mesh, or a mesh-only allocator on a switched
fabric, is rejected here, after filters had the chance to exclude it).

Workload sources resolve once per distinct source: SWF logs are parsed
and prepared through the archive pipeline and -- when a workload store is
available -- interned so every cell references the trace by digest.  The
per-source accounting (:class:`SourceInfo`) rides along in the
:class:`Expansion` so drivers and reports can show exactly what was
ingested.

Every cell carries a **cell digest**: the SHA-256 of the canonical JSON
of its spec's digest-normalised form (inline rows replaced by their
content address).  It is pure -- no store access -- identical for the
inline and interned representations of the same cell, and is what the
campaign manifest keys completion status by.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.model import (
    BUNDLED_SWF,
    Campaign,
    CampaignError,
    MeshAxis,
    TraceSource,
)
from repro.runner.spec import ExperimentSpec
from repro.trace.store import TraceStore, trace_digest

__all__ = [
    "CampaignCell",
    "Expansion",
    "SourceInfo",
    "expand",
    "cell_digest",
]


def cell_digest(spec: ExperimentSpec) -> str:
    """Pure content digest of a cell (both trace representations agree).

    >>> spec = ExperimentSpec(mesh_shape=(8, 8), pattern="ring",
    ...                       allocator="mc", load=1.0, seed=1, n_jobs=10)
    >>> cell_digest(spec)[:12]
    'f86d22745a54'
    >>> cell_digest(spec) == cell_digest(spec.with_trace_digest())
    True
    """
    canonical = json.dumps(
        spec.with_trace_digest().to_dict(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class CampaignCell:
    """One expanded cell: its axis coordinates, spec, and content digest."""

    index: int
    coords: dict
    spec: ExperimentSpec
    digest: str

    def __hash__(self) -> int:  # coords is a dict; identity is the digest
        return hash(self.digest)


@dataclass
class SourceInfo:
    """Resolution record for one workload source."""

    source: TraceSource
    digest: str
    n_jobs: int
    parse: object | None = None  # SwfParseReport for swf sources
    normalize: object | None = None  # NormalizeReport for swf sources

    def summary(self) -> str:
        parts = [f"{self.source.label}: {self.n_jobs} jobs, digest {self.digest[:12]}"]
        if self.parse is not None:
            parts.append(f"parse [{self.parse.summary()}]")
        if self.normalize is not None:
            parts.append(f"prepare [{self.normalize.summary()}]")
        return "; ".join(parts)


@dataclass
class Expansion:
    """The expanded campaign: unique cells plus expansion accounting."""

    campaign: Campaign
    cells: list[CampaignCell] = field(default_factory=list)
    n_raw: int = 0
    n_excluded: int = 0
    n_deduped: int = 0
    sources: dict = field(default_factory=dict)  # source label -> SourceInfo
    digest: str = ""

    @property
    def axis_names(self) -> list[str]:
        return list(self.campaign.axes)

    def select(self, **coords) -> list[CampaignCell]:
        """Cells whose coordinates match every given ``axis=value`` pair."""
        out = []
        for cell in self.cells:
            if all(cell.coords.get(axis) == value for axis, value in coords.items()):
                out.append(cell)
        return out

    def summary(self) -> str:
        parts = [f"{len(self.cells)} cells"]
        if self.n_excluded:
            parts.append(f"{self.n_excluded} excluded")
        if self.n_deduped:
            parts.append(f"{self.n_deduped} duplicates deduped")
        return (
            f"campaign {self.campaign.name!r}: " + ", ".join(parts)
            + f" over axes {'x'.join(str(len(v)) for v in self.campaign.axes.values())}"
            f" ({' / '.join(self.campaign.axes)})"
        )


def _coord_label(value):
    """The filterable/serializable form of an axis value."""
    if isinstance(value, (MeshAxis, TraceSource)):
        return value.label
    return value


def _matches(filt: dict, coords: dict) -> bool:
    """Whether a filter table matches a cell's coordinates.

    Every key must match; a list value means "any of".  Filter values are
    compared against the coordinate labels (``"8x8x8t"`` for meshes,
    ``"synthetic"``/``"swf:..."``/``"ref:..."`` for workloads).
    """
    for key, want in filt.items():
        have = coords.get(key)
        options = want if isinstance(want, (list, tuple)) else [want]
        if not any(have == _coord_label(opt) or have == opt for opt in options):
            return False
    return True


def _resolve_swf_path(source: TraceSource, base_dir: Path | None) -> Path:
    path_text = source.path or ""
    if path_text.startswith("bundled:"):
        name = path_text.split(":", 1)[1]
        if name in ("sdsc-mini", "sdsc_mini"):
            from repro.trace.archive import bundled_mini_swf

            return bundled_mini_swf()
        if name in ("sdsc-mini-users", "sdsc_mini_users"):
            from repro.trace.archive import bundled_mini_swf_users

            return bundled_mini_swf_users()
        raise CampaignError(
            f"unknown bundled SWF fixture {name!r} in workload {source.label!r}; "
            f"bundled fixtures: {list(BUNDLED_SWF)}"
        )
    path = Path(path_text)
    if not path.is_absolute() and base_dir is not None:
        path = base_dir / path
    return path


def _resolve_source(
    source: TraceSource, base_dir: Path | None, store: TraceStore | None
) -> tuple[dict, SourceInfo]:
    """Workload spec fields + accounting for one non-synthetic source.

    Returns the ``ExperimentSpec`` keyword fragment -- ``trace_ref``
    when a store is available (rows interned once), inline ``trace``
    otherwise -- so campaigns behave exactly like the figure drivers:
    interning is representation, never behaviour.
    """
    if source.kind == "ref":
        assert source.digest is not None
        if store is not None and source.digest not in store:
            raise CampaignError(
                f"workload {source.label!r}: trace {source.digest} is not in the "
                f"workload store {store.root} -- intern it first "
                "(repro.trace.archive.ingest_swf or TraceStore.put)"
            )
        info = SourceInfo(source=source, digest=source.digest, n_jobs=-1)
        return {"trace_ref": source.digest}, info
    from repro.trace.archive import prepare_trace, trace_rows
    from repro.trace.swf import parse_swf

    path = _resolve_swf_path(source, base_dir)
    parsed, parse_report = parse_swf(path)
    prepared, norm_report = prepare_trace(
        parsed,
        n_jobs=source.n_jobs,
        time_scale=source.time_scale,
        max_size=source.max_size,
        oversized=source.oversized,
        target_load=source.target_load,
    )
    rows = trace_rows(prepared)
    info = SourceInfo(
        source=source,
        digest=trace_digest(rows),
        n_jobs=len(prepared),
        parse=parse_report,
        normalize=norm_report,
    )
    if store is not None:
        return {"trace_ref": store.put(rows)}, info
    return {"trace": rows}, info


def _network_fragment(settings: dict):
    network = settings.get("network")
    if network is None:
        return None
    from repro.network.fluid import NetworkParams

    try:
        params = NetworkParams(**dict(network))
    except TypeError as exc:
        raise CampaignError(f"bad network settings {network!r}: {exc}") from None
    return ExperimentSpec.from_network_params(params)


def expand(
    campaign: Campaign,
    store: TraceStore | None = None,
    check: bool = True,
) -> Expansion:
    """Expand a campaign into its unique, validated cell list.

    Parameters
    ----------
    campaign:
        The validated campaign (``load_campaign`` validates on load).
    store:
        Workload store to intern SWF sources into; ``None`` keeps
        explicit traces inline in the specs (identical results and cache
        keys -- see :meth:`ExperimentSpec.cache_key`).
    check:
        Re-run :meth:`Campaign.validate` first (cheap; keeps
        programmatically built campaigns honest).
    """
    if check:
        campaign.validate()
    from repro.core.registry import (
        allocator_names,
        allocator_names_3d,
        allocator_names_clos,
    )

    axes = campaign.axes
    names = list(axes)
    machine_axis = "topology" if "topology" in axes else "mesh"
    expansion = Expansion(campaign=campaign)
    allocators_3d = set(allocator_names_3d())
    allocators_clos = set(allocator_names_clos())
    clos_only = allocators_clos - set(allocator_names())
    source_cache: dict[TraceSource, tuple[dict, SourceInfo]] = {}
    seen: dict[str, CampaignCell] = {}

    for values in itertools.product(*(axes[name] for name in names)):
        expansion.n_raw += 1
        raw = dict(zip(names, values))
        coords = {name: _coord_label(value) for name, value in raw.items()}
        if campaign.include and not any(
            _matches(f, coords) for f in campaign.include
        ):
            expansion.n_excluded += 1
            continue
        if any(_matches(f, coords) for f in campaign.exclude):
            expansion.n_excluded += 1
            continue

        settings = {
            "seed": 1,
            "scheduler": "fcfs",
            "n_jobs": 0,
            "runtime_scale": 1.0,
            "priority": None,
            "n_users": 0,
        }
        settings.update(campaign.defaults)
        for ov in campaign.overrides:
            if _matches(ov.when, coords):
                settings.update(ov.set)

        mesh: MeshAxis = raw[machine_axis]
        allocator: str = raw["allocator"]
        if mesh.topology is not None:
            if allocator not in allocators_clos:
                raise CampaignError(
                    f"allocator {allocator!r} cannot place on the switched "
                    f"fabric {mesh.label!r} (cell {coords}); restrict the "
                    "axis, or add an [[exclude]] pairing them (Clos-capable "
                    f"allocators: {sorted(allocators_clos)})"
                )
        elif allocator in clos_only:
            raise CampaignError(
                f"allocator {allocator!r} needs a switched fabric and cannot "
                f"place on the mesh {mesh.label!r} (cell {coords}); restrict "
                "the axis, or add an [[exclude]] pairing them"
            )
        elif len(mesh.shape) == 3 and allocator not in allocators_3d:
            raise CampaignError(
                f"allocator {allocator!r} cannot place on the 3-D mesh "
                f"{mesh.label!r} (cell {coords}); restrict the axis, or add "
                "an [[exclude]] pairing them (3-D-capable allocators: "
                f"{sorted(allocators_3d)})"
            )

        source: TraceSource = raw.get("workload", TraceSource(kind="synthetic"))
        if source.kind == "synthetic":
            if int(settings["n_jobs"]) < 1:
                raise CampaignError(
                    f"cell {coords}: synthetic workloads need n_jobs >= 1 "
                    "(set it in [defaults] or an [[override]])"
                )
            workload = {
                "n_jobs": int(settings["n_jobs"]),
                "runtime_scale": float(settings["runtime_scale"]),
            }
            # Tenancy only shapes *generated* traces; explicit traces
            # carry their own user ids, so the knob stays out of their
            # specs (and cache keys).
            if int(settings["n_users"]):
                workload["n_users"] = int(settings["n_users"])
        else:
            if source not in source_cache:
                source_cache[source] = _resolve_source(
                    source, campaign.base_dir, store
                )
            fragment, info = source_cache[source]
            expansion.sources.setdefault(source.label, info)
            workload = dict(fragment)

        try:
            spec = ExperimentSpec(
                mesh_shape=mesh.shape,
                torus=mesh.torus,
                topology=mesh.topology,
                pattern=raw["pattern"],
                allocator=allocator,
                load=float(raw["load"]),
                seed=int(raw.get("seed", settings["seed"])),
                scheduler=raw.get("scheduler", settings["scheduler"]),
                priority=raw.get("priority", settings["priority"]),
                network=_network_fragment(settings),
                **workload,
            )
        except ValueError as exc:
            raise CampaignError(f"cell {coords}: {exc}") from None

        digest = cell_digest(spec)
        if digest in seen:
            expansion.n_deduped += 1
            continue
        cell = CampaignCell(
            index=len(expansion.cells), coords=coords, spec=spec, digest=digest
        )
        seen[digest] = cell
        expansion.cells.append(cell)

    if not expansion.cells:
        raise CampaignError(
            f"campaign {campaign.name!r} expands to zero cells "
            f"({expansion.n_raw} raw, {expansion.n_excluded} excluded) -- "
            "check the include/exclude filters"
        )
    payload = json.dumps(
        {"name": campaign.name, "cells": [c.digest for c in expansion.cells]},
        separators=(",", ":"),
    )
    expansion.digest = hashlib.sha256(payload.encode()).hexdigest()
    return expansion
