"""Ring pattern: each rank sends to its successor.

One of the three components of the Cplant communication test suite behind
Fig 1, and the pattern reported (Section 1) to run *faster* under the
one-dimensional Cplant allocator than under MC1x1 -- the observation that
motivated this paper.
"""

from __future__ import annotations

import numpy as np

from repro.patterns.base import Pattern, register_pattern

__all__ = ["Ring"]


@register_pattern
class Ring(Pattern):
    """Every rank messages its ring successor once per cycle."""

    name = "ring"
    deterministic_cycle = True

    def cycle(self, p: int, rng: np.random.Generator | None = None) -> np.ndarray:
        self._check_size(p)
        if p == 1:
            return self.empty()
        src = np.arange(p, dtype=np.int64)
        return np.stack([src, (src + 1) % p], axis=1)

    def messages_per_cycle(self, p: int) -> int:
        return p if p > 1 else 0
