"""The Cplant communication test suite of Leung et al. (Fig 1).

"Each plotted job uses 30 processors and performs a communication test
consisting of all-to-all broadcast, all-pairs ping-pong (message sent in
each direction), and ring communication.  Each of these patterns is
repeated one hundred times."

The suite concatenates the three component patterns' rounds, repeated
``repetitions`` times; the Fig 1 experiment measures how the suite's
simulated running time varies with the allocation's average pairwise
distance.
"""

from __future__ import annotations

import numpy as np

from repro.patterns.alltoall import AllToAllBroadcast
from repro.patterns.base import Pattern, register_pattern
from repro.patterns.pingpong import AllPairsPingPong
from repro.patterns.ring import Ring

__all__ = ["CplantTestSuite"]


@register_pattern
class CplantTestSuite(Pattern):
    """all-to-all broadcast + all-pairs ping-pong + ring, repeated.

    Parameters
    ----------
    repetitions:
        How many times the three-component suite repeats (paper: 100).
        Benchmarks scale this down; the shape of Fig 1 is unaffected
        because running time is linear in repetitions.
    """

    name = "cplant-test-suite"
    deterministic_cycle = True

    def __init__(self, repetitions: int = 100):
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self.repetitions = repetitions
        self._components = [AllToAllBroadcast(), AllPairsPingPong(), Ring()]

    def cycle(self, p: int, rng: np.random.Generator | None = None) -> np.ndarray:
        self._check_size(p)
        rounds = self.rounds(p, rng)
        if not rounds:
            return self.empty()
        return np.concatenate(rounds, axis=0)

    def rounds(
        self, p: int, rng: np.random.Generator | None = None
    ) -> list[np.ndarray]:
        self._check_size(p)
        if p == 1:
            return []
        one_pass: list[np.ndarray] = []
        for component in self._components:
            one_pass.extend(component.rounds(p, rng))
        return one_pass * self.repetitions

    def messages_per_cycle(self, p: int) -> int:
        if p == 1:
            return 0
        per_pass = sum(c.messages_per_cycle(p) for c in self._components)
        return per_pass * self.repetitions
