"""The random pattern (Section 3.2).

"In the random pattern, each message goes between a random pair of
processors assigned to the job."

For the flit engine each round draws fresh pairs.  For the fluid engine a
job's cycle is a finite random sample (``cycle_factor * p`` ordered pairs,
drawn once per job with the experiment's seeded generator): unlike the
perfectly balanced all-to-all cycle, a finite sample has persistent hot
pairs and hot links, which is what distinguishes "random" from "all-to-all"
contention in the paper's results even though both are uniform over pairs
in expectation.
"""

from __future__ import annotations

import numpy as np

from repro.patterns.base import Pattern, register_pattern

__all__ = ["RandomPairs"]


@register_pattern
class RandomPairs(Pattern):
    """Uniformly random ordered pairs of distinct ranks.

    Parameters
    ----------
    cycle_factor:
        Cycle length as a multiple of job size (default 8); trades fidelity
        of the fluid-engine load average against hotspot persistence.
    """

    name = "random"

    def __init__(self, cycle_factor: int = 8):
        if cycle_factor < 1:
            raise ValueError("cycle_factor must be >= 1")
        self.cycle_factor = cycle_factor

    def cycle(self, p: int, rng: np.random.Generator | None = None) -> np.ndarray:
        self._check_size(p)
        if p == 1:
            return self.empty()
        rng = rng if rng is not None else np.random.default_rng(0)
        m = self.cycle_factor * p
        src = rng.integers(0, p, size=m, dtype=np.int64)
        # Draw dst != src by offsetting with a nonzero shift.
        shift = rng.integers(1, p, size=m, dtype=np.int64)
        dst = (src + shift) % p
        return np.stack([src, dst], axis=1)

    def rounds(
        self, p: int, rng: np.random.Generator | None = None
    ) -> list[np.ndarray]:
        """Random cycle split into rounds of ``p`` messages each."""
        pairs = self.cycle(p, rng)
        if len(pairs) == 0:
            return []
        return [pairs[i : i + p] for i in range(0, len(pairs), p)]

    def messages_per_cycle(self, p: int) -> int:
        return self.cycle_factor * p if p > 1 else 0
