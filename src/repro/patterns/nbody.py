"""The n-body pattern (Section 3.2, Fig 5).

"The processors assigned to a job form a virtual ring.  For a job using p
processors, each processor sends a message to its successor in the ring in
each of floor(p/2) ring subphases and then sends a message to the processor
halfway across the ring during a single chordal subphase."

The pattern models a ring-based interparticle force computation: particle
copies migrate around the ring (ring subphases), then accumulated forces are
returned to each particle's owner via a single chord of length floor(p/2)
(chordal subphase).  One cycle is therefore ``floor(p/2) + 1`` subphases of
``p`` messages each (``p >= 2``).
"""

from __future__ import annotations

import numpy as np

from repro.patterns.base import Pattern, register_pattern

__all__ = ["NBody"]


@register_pattern
class NBody(Pattern):
    """Ring subphases plus one chordal subphase per cycle."""

    name = "n-body"
    deterministic_cycle = True

    def cycle(self, p: int, rng: np.random.Generator | None = None) -> np.ndarray:
        self._check_size(p)
        if p == 1:
            return self.empty()
        # floor(p/2) ring subphases tiled in one shot, then the chord.
        src = np.arange(p, dtype=np.int64)
        ring = np.stack([src, (src + 1) % p], axis=1)
        chord = np.stack([src, (src + p // 2) % p], axis=1)
        return np.concatenate([np.tile(ring, (p // 2, 1)), chord], axis=0)

    def rounds(
        self, p: int, rng: np.random.Generator | None = None
    ) -> list[np.ndarray]:
        self._check_size(p)
        if p == 1:
            return []
        return list(self.cycle(p).reshape(p // 2 + 1, p, 2))

    def messages_per_cycle(self, p: int) -> int:
        return (p // 2 + 1) * p if p > 1 else 0

    @staticmethod
    def n_ring_subphases(p: int) -> int:
        """Number of ring subphases in a cycle (floor(p/2))."""
        return p // 2
