"""Communication patterns (Section 3.2 of the paper).

A pattern maps a job size ``p`` to rank-level message traffic in two views:

* :meth:`~repro.patterns.base.Pattern.cycle` -- one full cycle of
  ``(src_rank, dst_rank)`` pairs, "repeated as necessary to meet the message
  quotas for each job".  The fluid engine averages link loads over a cycle.
* :meth:`~repro.patterns.base.Pattern.rounds` -- the same messages grouped
  into bulk-synchronous rounds for the flit engine.

Patterns evaluated by the paper: :class:`AllToAll`, :class:`NBody` (ring
subphases plus one chordal subphase), :class:`RandomPairs`.  The additional
:class:`Ring`, :class:`AllPairsPingPong`, :class:`AllToAllBroadcast` and
:class:`CplantTestSuite` patterns reproduce the communication test used by
Leung et al.'s Cplant experiments (Fig 1).
"""

from repro.patterns.alltoall import AllToAll, AllToAllBroadcast
from repro.patterns.base import Pattern, get_pattern, register_pattern
from repro.patterns.composite import CplantTestSuite
from repro.patterns.nbody import NBody
from repro.patterns.pingpong import AllPairsPingPong
from repro.patterns.random_pairs import RandomPairs
from repro.patterns.ring import Ring

__all__ = [
    "Pattern",
    "AllToAll",
    "AllToAllBroadcast",
    "NBody",
    "RandomPairs",
    "Ring",
    "AllPairsPingPong",
    "CplantTestSuite",
    "get_pattern",
    "register_pattern",
]
