"""All-to-all patterns.

"In the all-to-all pattern, each processor sends a message to all other
processors running the same job." (Section 3.2.)

:class:`AllToAll` is the trace-experiment pattern; its rounds use the
classic shifted decomposition (round ``k``: rank ``i`` sends to
``(i + k) mod p``), which keeps every processor sending exactly one message
per round -- the contention structure of a well-implemented all-to-all.

:class:`AllToAllBroadcast` is the same pair set but grouped one *broadcast*
per round (rank ``k`` sends to everyone in round ``k``); it reproduces the
"all-to-all broadcast" component of the Cplant test suite behind Fig 1.
"""

from __future__ import annotations

import numpy as np

from repro.patterns.base import Pattern, register_pattern

__all__ = ["AllToAll", "AllToAllBroadcast"]


@register_pattern
class AllToAll(Pattern):
    """Every ordered pair communicates once per cycle."""

    name = "all-to-all"

    def cycle(self, p: int, rng: np.random.Generator | None = None) -> np.ndarray:
        self._check_size(p)
        if p == 1:
            return self.empty()
        # Cycle in round order so a partial cycle is still balanced.
        rounds = self.rounds(p)
        return np.concatenate(rounds, axis=0)

    def rounds(
        self, p: int, rng: np.random.Generator | None = None
    ) -> list[np.ndarray]:
        self._check_size(p)
        if p == 1:
            return []
        src = np.arange(p, dtype=np.int64)
        out = []
        for k in range(1, p):
            dst = (src + k) % p
            out.append(np.stack([src, dst], axis=1))
        return out

    def messages_per_cycle(self, p: int) -> int:
        return p * (p - 1) if p > 1 else 0


@register_pattern
class AllToAllBroadcast(Pattern):
    """All-to-all grouped as one root-broadcast per round (test-suite form)."""

    name = "all-to-all-broadcast"

    def cycle(self, p: int, rng: np.random.Generator | None = None) -> np.ndarray:
        self._check_size(p)
        if p == 1:
            return self.empty()
        return np.concatenate(self.rounds(p), axis=0)

    def rounds(
        self, p: int, rng: np.random.Generator | None = None
    ) -> list[np.ndarray]:
        self._check_size(p)
        if p == 1:
            return []
        others = np.arange(p, dtype=np.int64)
        out = []
        for root in range(p):
            dst = others[others != root]
            src = np.full(p - 1, root, dtype=np.int64)
            out.append(np.stack([src, dst], axis=1))
        return out

    def messages_per_cycle(self, p: int) -> int:
        return p * (p - 1) if p > 1 else 0
