"""All-to-all patterns.

"In the all-to-all pattern, each processor sends a message to all other
processors running the same job." (Section 3.2.)

:class:`AllToAll` is the trace-experiment pattern; its rounds use the
classic shifted decomposition (round ``k``: rank ``i`` sends to
``(i + k) mod p``), which keeps every processor sending exactly one message
per round -- the contention structure of a well-implemented all-to-all.

:class:`AllToAllBroadcast` is the same pair set but grouped one *broadcast*
per round (rank ``k`` sends to everyone in round ``k``); it reproduces the
"all-to-all broadcast" component of the Cplant test suite behind Fig 1.

Both cycles are built as single closed-form array constructions (no
per-round Python loop); ``rounds`` just reshapes the cycle, since every
round has the same length.
"""

from __future__ import annotations

import numpy as np

from repro.patterns.base import Pattern, register_pattern

__all__ = ["AllToAll", "AllToAllBroadcast"]


@register_pattern
class AllToAll(Pattern):
    """Every ordered pair communicates once per cycle."""

    name = "all-to-all"
    deterministic_cycle = True
    uniform_all_pairs = True

    def cycle(self, p: int, rng: np.random.Generator | None = None) -> np.ndarray:
        self._check_size(p)
        if p == 1:
            return self.empty()
        # Cycle in round order so a partial cycle is still balanced:
        # round k (k = 1..p-1) pairs rank i with (i + k) mod p.
        src = np.arange(p, dtype=np.int64)
        shift = np.arange(1, p, dtype=np.int64)
        dst = (src[None, :] + shift[:, None]) % p
        pairs = np.empty((p - 1, p, 2), dtype=np.int64)
        pairs[:, :, 0] = src
        pairs[:, :, 1] = dst
        return pairs.reshape(-1, 2)

    def rounds(
        self, p: int, rng: np.random.Generator | None = None
    ) -> list[np.ndarray]:
        self._check_size(p)
        if p == 1:
            return []
        return list(self.cycle(p).reshape(p - 1, p, 2))

    def messages_per_cycle(self, p: int) -> int:
        return p * (p - 1) if p > 1 else 0


@register_pattern
class AllToAllBroadcast(Pattern):
    """All-to-all grouped as one root-broadcast per round (test-suite form)."""

    name = "all-to-all-broadcast"
    deterministic_cycle = True
    uniform_all_pairs = True

    def cycle(self, p: int, rng: np.random.Generator | None = None) -> np.ndarray:
        self._check_size(p)
        if p == 1:
            return self.empty()
        # Round r: root r sends to the other ranks in ascending order;
        # skipping the root shifts later columns up by one.
        root = np.arange(p, dtype=np.int64)[:, None]
        col = np.arange(p - 1, dtype=np.int64)[None, :]
        pairs = np.empty((p, p - 1, 2), dtype=np.int64)
        pairs[:, :, 0] = root
        pairs[:, :, 1] = col + (col >= root)
        return pairs.reshape(-1, 2)

    def rounds(
        self, p: int, rng: np.random.Generator | None = None
    ) -> list[np.ndarray]:
        self._check_size(p)
        if p == 1:
            return []
        return list(self.cycle(p).reshape(p, p - 1, 2))

    def messages_per_cycle(self, p: int) -> int:
        return p * (p - 1) if p > 1 else 0
