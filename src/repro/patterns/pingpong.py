"""All-pairs ping-pong: a message in each direction for every pair.

Component of the Cplant test suite behind Fig 1 ("all-pairs ping-pong
(message sent in each direction)").  Rounds follow the circle method
(round-robin tournament) so each rank plays at most one partner per round:
for even ``p`` that is ``p - 1`` rounds, for odd ``p`` it is ``p`` rounds
with one rank sitting out per round.  Each pairing exchanges two messages
(the ping and the pong), which we model as both directions in the round.
"""

from __future__ import annotations

import numpy as np

from repro.patterns.base import Pattern, register_pattern

__all__ = ["AllPairsPingPong"]


@register_pattern
class AllPairsPingPong(Pattern):
    """Every unordered pair exchanges a ping and a pong each cycle."""

    name = "ping-pong"
    deterministic_cycle = True

    def cycle(self, p: int, rng: np.random.Generator | None = None) -> np.ndarray:
        self._check_size(p)
        if p == 1:
            return self.empty()
        return np.concatenate(self.rounds(p), axis=0)

    def rounds(
        self, p: int, rng: np.random.Generator | None = None
    ) -> list[np.ndarray]:
        self._check_size(p)
        if p == 1:
            return []
        # Circle method: fix player 0 (even p) / a bye slot (odd p), rotate.
        n = p if p % 2 == 0 else p + 1
        ranks = list(range(n))
        out = []
        for _ in range(n - 1):
            pairs = []
            for i in range(n // 2):
                a, b = ranks[i], ranks[n - 1 - i]
                if a < p and b < p:  # skip the bye slot for odd p
                    pairs.append((a, b))
                    pairs.append((b, a))
            out.append(np.asarray(pairs, dtype=np.int64))
            ranks = [ranks[0]] + [ranks[-1]] + ranks[1:-1]
        return out

    def messages_per_cycle(self, p: int) -> int:
        return p * (p - 1) if p > 1 else 0
