"""Pattern interface and registry.

Rank-level pairs are integers in ``[0, p)``; the simulator maps rank ``r``
to the ``r``-th processor of the job's allocation (allocation order defines
the job's virtual topology, e.g. the n-body ring), which mirrors how MPI
ranks land on an allocated node list.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Pattern", "register_pattern", "get_pattern", "pattern_names"]

_EMPTY = np.empty((0, 2), dtype=np.int64)


class Pattern(ABC):
    """A communication pattern parameterised only by job size.

    Deterministic patterns ignore the ``rng`` argument; stochastic ones
    (``random``) use it so experiments stay reproducible.
    """

    #: Registry key and display name, set by subclasses.
    name: str = "abstract"

    #: True when ``cycle(p)`` depends on ``p`` alone (no rng).  The
    #: simulator skips per-job rng construction for such patterns and may
    #: reuse one cached cycle per size via :meth:`cached_cycle`.
    deterministic_cycle: bool = False

    #: True when one cycle is exactly the set of all ordered rank pairs
    #: (all-to-all and its broadcast grouping).  The fluid engine then
    #: builds the per-link load profile in closed form without
    #: materialising the ``p * (p - 1)`` pair array at all.
    uniform_all_pairs: bool = False

    @abstractmethod
    def cycle(self, p: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """One full cycle of rank-level (src, dst) pairs, shape ``(m, 2)``.

        Single-processor jobs (``p == 1``) yield an empty cycle: they
        communicate with nobody, and the simulator runs them at the nominal
        issue rate.
        """

    def rounds(
        self, p: int, rng: np.random.Generator | None = None
    ) -> list[np.ndarray]:
        """Cycle messages grouped into bulk-synchronous rounds.

        The default implementation puts the whole cycle in one round;
        subclasses with phase structure (n-body, ping-pong, ...) override.
        """
        pairs = self.cycle(p, rng)
        return [pairs] if len(pairs) else []

    def messages_per_cycle(self, p: int) -> int:
        """Cycle length for deterministic patterns (used for quota math)."""
        return len(self.cycle(p))

    def cached_cycle(self, p: int) -> np.ndarray:
        """Memoised, read-only ``cycle(p)`` for deterministic patterns.

        One job-size cycle is shared across every job of that size, so the
        returned array is marked non-writeable; stochastic patterns must
        keep going through :meth:`cycle`.
        """
        if not self.deterministic_cycle:
            raise ValueError(
                f"pattern {self.name!r} is stochastic; cycles cannot be cached"
            )
        cache = self.__dict__.setdefault("_cycle_cache", {})
        pairs = cache.get(p)
        if pairs is None:
            pairs = self.cycle(p)
            pairs.setflags(write=False)
            cache[p] = pairs
        return pairs

    @staticmethod
    def _check_size(p: int) -> None:
        if p < 1:
            raise ValueError(f"job size must be >= 1, got {p}")

    @staticmethod
    def empty() -> np.ndarray:
        """The canonical empty pair array."""
        return _EMPTY

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


_REGISTRY: dict[str, type[Pattern]] = {}


def register_pattern(cls: type[Pattern]) -> type[Pattern]:
    """Class decorator adding a pattern to the by-name registry."""
    if not cls.name or cls.name == "abstract":
        raise ValueError("pattern classes must define a unique name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate pattern name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_pattern(name: str, **kwargs) -> Pattern:
    """Instantiate a registered pattern by name (e.g. ``"all-to-all"``)."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown pattern {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def pattern_names() -> list[str]:
    """Names of all registered patterns."""
    return sorted(_REGISTRY)
