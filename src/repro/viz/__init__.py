"""ASCII visualisation of curves, shells, and machine occupancy."""

from repro.viz.ascii_art import (
    render_curve_path,
    render_curve_ranks,
    render_occupancy,
    render_shells,
    render_truncation,
)

__all__ = [
    "render_curve_path",
    "render_curve_ranks",
    "render_occupancy",
    "render_shells",
    "render_truncation",
]
