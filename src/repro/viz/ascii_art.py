"""ASCII renderings of the paper's illustrative figures.

* :func:`render_curve_path` -- box-drawing picture of a curve (Fig 2),
* :func:`render_curve_ranks` -- numeric rank grid of a curve,
* :func:`render_truncation` -- the top rows of a truncated curve with gap
  markers (Fig 6),
* :func:`render_shells` -- shell weights around a request (Fig 4),
* :func:`render_occupancy` -- which job holds each processor.

All renderings put y = 0 at the *bottom* (mesh convention), matching the
paper's figures.
"""

from __future__ import annotations

import numpy as np

from repro.core.curves import Curve
from repro.core.mc import shell_map
from repro.mesh.machine import Machine
from repro.mesh.topology import Mesh2D

__all__ = [
    "render_curve_path",
    "render_curve_ranks",
    "render_occupancy",
    "render_shells",
    "render_truncation",
]

# Path glyph by (has_west, has_east, has_north, has_south) connections.
_PATH_GLYPHS = {
    (True, True, False, False): "──",
    (False, False, True, True): "│ ",
    (False, True, True, False): "└─",
    (True, False, True, False): "┘ ",
    (False, True, False, True): "┌─",
    (True, False, False, True): "┐ ",
    (True, False, False, False): "╴ ",
    (False, True, False, False): "╶─",
    (False, False, True, False): "╵ ",
    (False, False, False, True): "╷ ",
    (False, False, False, False): "· ",
}


def render_curve_path(curve: Curve) -> str:
    """Draw the curve as connected box-drawing segments (like Fig 2)."""
    mesh = curve.mesh
    w, h = mesh.width, mesh.height
    # Connection sets per cell from consecutive curve steps.
    conn: dict[int, set[str]] = {int(n): set() for n in curve.order}
    for a, b in zip(curve.order[:-1], curve.order[1:]):
        a, b = int(a), int(b)
        if mesh.manhattan(a, b) != 1:
            continue  # gap: no segment drawn
        ax, ay = mesh.coords(a)
        bx, by = mesh.coords(b)
        if bx == ax + 1:
            conn[a].add("E")
            conn[b].add("W")
        elif bx == ax - 1:
            conn[a].add("W")
            conn[b].add("E")
        elif by == ay + 1:
            conn[a].add("N")
            conn[b].add("S")
        else:
            conn[a].add("S")
            conn[b].add("N")
    lines = []
    for y in range(h - 1, -1, -1):
        row = []
        for x in range(w):
            c = conn[mesh.node_id(x, y)]
            glyph = _PATH_GLYPHS[("W" in c, "E" in c, "N" in c, "S" in c)]
            # Horizontal continuation only if connected east.
            row.append(glyph if "E" in c else glyph[0] + " ")
        lines.append("".join(row).rstrip())
    return "\n".join(lines)


def render_curve_ranks(curve: Curve, cell_width: int | None = None) -> str:
    """Grid of curve ranks, one cell per processor."""
    mesh = curve.mesh
    n = mesh.n_nodes
    cell_width = cell_width or len(str(n - 1))
    lines = []
    for y in range(mesh.height - 1, -1, -1):
        row = [
            str(int(curve.rank[mesh.node_id(x, y)])).rjust(cell_width)
            for x in range(mesh.width)
        ]
        lines.append(" ".join(row))
    return "\n".join(lines)


def render_truncation(curve: Curve, top_rows: int = 6) -> str:
    """Fig 6 view: rank grid of the top rows, marking post-gap cells.

    Cells entered via a discontinuity (the paper's arrows) are suffixed
    with ``*``.
    """
    mesh = curve.mesh
    after_gap = {int(curve.order[r + 1]) for r in curve.gap_ranks()}
    cell_width = len(str(mesh.n_nodes - 1)) + 1
    lines = [
        f"{curve.name} on {mesh.width}x{mesh.height}: top {top_rows} rows "
        f"({curve.n_gaps()} gaps, * marks the processor after a gap)"
    ]
    for y in range(mesh.height - 1, mesh.height - 1 - top_rows, -1):
        row = []
        for x in range(mesh.width):
            node = mesh.node_id(x, y)
            text = str(int(curve.rank[node]))
            if node in after_gap:
                text += "*"
            row.append(text.rjust(cell_width))
        lines.append(" ".join(row))
    return "\n".join(lines)


def render_shells(
    mesh: Mesh2D,
    anchor_x: int,
    anchor_y: int,
    shape: tuple[int, int],
    machine: Machine | None = None,
) -> str:
    """Fig 4 view: shell weight of every processor around a request.

    Busy processors (when a machine is given) render as ``#``; shell 0 --
    the requested submesh -- renders as ``.``.
    """
    shells = shell_map(mesh, anchor_x, anchor_y, shape)
    lines = []
    for y in range(mesh.height - 1, -1, -1):
        row = []
        for x in range(mesh.width):
            node = mesh.node_id(x, y)
            if machine is not None and not machine.is_free(node):
                row.append(" #")
            elif shells[node] == 0:
                row.append(" .")
            else:
                row.append(str(int(shells[node])).rjust(2))
        lines.append("".join(row))
    return "\n".join(lines)


def render_occupancy(machine: Machine) -> str:
    """Letters per job id (``.`` = free); job ids map to a-z cyclically."""
    mesh = machine.mesh
    lines = []
    for y in range(mesh.height - 1, -1, -1):
        row = []
        for x in range(mesh.width):
            owner = int(machine.owner[mesh.node_id(x, y)])
            row.append("." if owner < 0 else chr(ord("a") + owner % 26))
        lines.append("".join(row))
    return "\n".join(lines)
