#!/usr/bin/env python
"""Draw the paper's space-filling curves and their truncation gaps.

Reproduces Fig 2 (the S-curve, Hilbert, and H-indexing orderings) as ASCII
art, then Fig 6: what happens when the 32x32 curves are cut down to the
16x22 machine -- "curves" with gaps along the top edge.

Run:  python examples/visualize_curves.py
"""

from repro import Mesh2D, get_curve
from repro.viz import render_curve_path, render_curve_ranks, render_truncation

mesh8 = Mesh2D(8, 8)
labels = {
    "s-curve": "(a) S-curve",
    "hilbert": "(b) Hilbert curve",
    "h-indexing": "(c) H-indexing (closed cycle)",
}
for name, label in labels.items():
    curve = get_curve(name, mesh8)
    print(f"{label}:")
    print(render_curve_path(curve))
    print()

print("Hilbert ranks on a 4x4 mesh (rank = position along the curve):")
print(render_curve_ranks(get_curve("hilbert", Mesh2D(4, 4))))
print()

# Fig 6: truncation to the 16x22 machine.
mesh = Mesh2D(16, 22)
for name in ("hilbert", "h-indexing"):
    curve = get_curve(name, mesh)
    print(render_truncation(curve, top_rows=6))
    print(
        f"-> {curve.n_gaps()} gaps; every discontinuity lies in the "
        "truncated upper region, exactly as the paper's Fig 6 arrows show.\n"
    )

# The S-curve stays gap-free on non-square meshes; the paper chose runs
# along the short direction after quick simulations.
s_short = get_curve("s-curve", mesh)
s_long = get_curve("s-curve", mesh, runs="long")
print(
    f"S-curve on 16x22: short-direction runs -> {s_short.n_gaps()} gaps, "
    f"long-direction runs -> {s_long.n_gaps()} gaps (both continuous; the "
    "direction changes packing behaviour, see benchmarks/test_ablations_bench.py)"
)
