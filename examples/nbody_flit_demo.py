#!/usr/bin/env python
"""Watch allocation quality change an n-body job's life at the flit level.

Builds the paper's Fig 5 message schedule (15-processor n-body: seven ring
subphases plus a chordal subphase), then runs it through the wormhole
microsimulator twice -- once on a ring-coherent curve allocation, once on
the same processors in scrambled rank order -- and once against a
contending neighbour job.  Dispersal and ring scrambling both slow the
computation; a neighbour stretches it further.

Run:  python examples/nbody_flit_demo.py
"""

import numpy as np

from repro import Machine, Mesh2D, Request, make_allocator
from repro.network.flit import FlitNetwork, FlitParams
from repro.network.traffic import mean_message_hops
from repro.patterns import NBody

P = 15
REPEATS = 5

mesh = Mesh2D(16, 16)
pattern = NBody()
rounds = pattern.rounds(P) * REPEATS
print(
    f"n-body with {P} processors: {NBody.n_ring_subphases(P)} ring subphases "
    f"+ 1 chordal subphase per cycle, {pattern.messages_per_cycle(P)} messages"
)
print("ring subphase:", ", ".join(f"{s}->{d}" for s, d in pattern.rounds(P)[0][:5]), "...")
print("chordal subphase:", ", ".join(f"{s}->{d}" for s, d in pattern.rounds(P)[-1][:5]), "...")

net = FlitNetwork(mesh, FlitParams(flit_time=1e-3, router_delay=2e-3))

# 1. Ring-coherent allocation: consecutive ranks adjacent along the curve.
machine = Machine(mesh)
coherent = make_allocator("hilbert+bf").allocate(Request(size=P), machine).nodes

# 2. Same processors, scrambled rank order: the virtual ring zig-zags.
scrambled = coherent.copy()
np.random.default_rng(3).shuffle(scrambled)

pairs = pattern.cycle(P)
for label, nodes in [("curve-ordered", coherent), ("scrambled ring", scrambled)]:
    finish = net.run_bsp({0: (nodes, rounds)}, message_flits=64)
    hops = mean_message_hops(mesh, nodes, pairs)
    print(
        f"{label:15s} mean message distance = {hops:5.2f} hops, "
        f"simulated time = {finish[0]:7.3f} s"
    )

# 3. Add a contending neighbour: a second n-body job interleaved nearby.
neighbour = make_allocator("hilbert+bf")
machine.allocate(coherent, job_id=0)
other = neighbour.allocate(Request(size=P, job_id=1), machine).nodes
finish = net.run_bsp(
    {0: (coherent, rounds), 1: (other, rounds)}, message_flits=64
)
print(
    f"{'with neighbour':15s} job 0 time = {finish[0]:7.3f} s, "
    f"job 1 time = {finish[1]:7.3f} s (link contention at work)"
)
