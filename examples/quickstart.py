#!/usr/bin/env python
"""Quickstart: allocate jobs on a mesh and inspect allocation quality.

Covers the core public API in ~40 lines:

* build a mesh machine,
* allocate jobs with different strategies from the paper,
* measure the dispersal metrics the paper studies,
* visualise the occupancy.

Run:  python examples/quickstart.py

To reproduce the paper's figures, use the experiments CLI.  The sweep
grids run on the parallel experiment engine (``repro.runner``): ``--jobs
N`` fans independent (allocator, load, pattern) cells out over worker
processes, and results are cached under ``.repro-cache/`` so repeating a
sweep is free::

    python -m repro.experiments fig7 --scale small --jobs 4
    python -m repro.experiments fig7 --scale small --jobs 4   # cache hits
    python -m repro.experiments fig8 --no-cache               # force recompute

See ``examples/compare_allocators.py`` for driving the engine from code.
"""

from repro import Machine, Mesh2D, Request, make_allocator
from repro.core.metrics import average_pairwise_hops, is_contiguous, n_components
from repro.viz import render_occupancy

# The paper's square machine: a 16x16 mesh of exclusively-dedicated CPUs.
mesh = Mesh2D(16, 16)
machine = Machine(mesh)

# Allocate a few jobs with the paper's strongest overall strategy:
# the Hilbert space-filling curve with Best Fit bin selection.
hilbert_bf = make_allocator("hilbert+bf")
for job_id, size in enumerate([30, 12, 64, 7]):
    allocation = hilbert_bf.allocate(Request(size=size, job_id=job_id), machine)
    machine.allocate(allocation.held, job_id=job_id)
    print(
        f"job {job_id}: {size:3d} procs  "
        f"avg pairwise hops = {average_pairwise_hops(mesh, allocation.nodes):5.2f}  "
        f"components = {n_components(mesh, allocation.nodes)}  "
        f"contiguous = {is_contiguous(mesh, allocation.nodes)}"
    )

print("\nmachine occupancy (letters = jobs, '.' = free):")
print(render_occupancy(machine))

# Free a job and watch a different strategy fill the hole.
machine.release(machine.busy_nodes()[machine.owner[machine.busy_nodes()] == 1])
mc = make_allocator("mc")  # Mache/Lo/Windisch's shell allocator
allocation = mc.allocate(Request(size=16, job_id=9), machine)
machine.allocate(allocation.held, job_id=9)
print("\nafter freeing job 1 and placing a 16-proc job with MC:")
print(render_occupancy(machine))
