#!/usr/bin/env python
"""Bring your own workload: SWF files and custom synthetic traces.

Shows the workload substrate end to end:

1. generate a synthetic trace with custom statistics,
2. write it to Standard Workload Format and read it back (the same parser
   accepts the real SDSC Paragon trace from the Parallel Workloads
   Archive),
3. sweep load factors through the simulator, as the paper's Figs 7/8 do.

Run:  python examples/custom_trace.py
"""

import tempfile
from pathlib import Path

from repro import Mesh2D, make_allocator
from repro.analysis.tables import format_table
from repro.patterns import get_pattern
from repro.sched import Simulation, summarize
from repro.trace import (
    SyntheticTraceConfig,
    apply_load_factor,
    read_swf,
    synthetic_trace,
    write_swf,
)
from repro.trace.synthetic import trace_statistics

# 1. A small cluster workload: 200 jobs, smaller machine, shorter jobs.
config = SyntheticTraceConfig(
    n_jobs=200,
    mean_interarrival=120.0,
    cv_interarrival=2.5,
    mean_size=9.0,
    mean_runtime=900.0,
    cv_runtime=1.2,
    max_size=64,
    n_320_jobs=0,
)
jobs = synthetic_trace(config, seed=123)
stats = trace_statistics(jobs)
print("synthetic trace:", {k: round(v, 2) for k, v in stats.items()})

# 2. SWF round trip -- drop in a real archive trace the same way.
with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "custom.swf"
    write_swf(jobs, path, header_comments=["synthetic demo trace"])
    jobs = read_swf(path)
print(f"re-read {len(jobs)} jobs from SWF")

# 3. Load-factor sweep on an 8x8 machine (Fig 7/8 style).
mesh = Mesh2D(8, 8)
rows = []
for load in (1.0, 0.6, 0.2):
    sim = Simulation(
        mesh,
        make_allocator("hilbert+bf"),
        get_pattern("all-to-all"),
        apply_load_factor(jobs, load),
        seed=1,
        load_factor=load,
    )
    s = summarize(sim.run())
    rows.append(
        {
            "load factor": load,
            "mean response (s)": s.mean_response,
            "mean wait (s)": s.mean_wait,
            "stretch": s.mean_stretch,
            "makespan (s)": s.makespan,
        }
    )
print()
print(format_table(rows, title="hilbert+bf on the custom trace", float_fmt=".1f"))
