#!/usr/bin/env python
"""Compare the paper's nine allocation strategies on a trace-driven run.

A miniature of the paper's Fig 8 grid: the SDSC-Paragon-like synthetic
trace plays through the FCFS simulator on a 16x16 mesh for each strategy
and each of two communication patterns; the table shows how the ordering
changes with the pattern -- the paper's central observation.

Run:  python examples/compare_allocators.py [n_jobs]
"""

import sys

from repro import Mesh2D, make_allocator
from repro.analysis.tables import format_table
from repro.experiments.sweep import PAPER_ALLOCATORS
from repro.patterns import get_pattern
from repro.sched import Simulation, summarize
from repro.trace import drop_oversized, sdsc_paragon_trace

n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 250

mesh = Mesh2D(16, 16)
jobs = drop_oversized(
    sdsc_paragon_trace(seed=7, n_jobs=n_jobs, runtime_scale=0.02), mesh.n_nodes
)
print(f"trace: {len(jobs)} jobs on {mesh}")

for pattern_name in ("all-to-all", "n-body"):
    rows = []
    for name in PAPER_ALLOCATORS:
        sim = Simulation(
            mesh,
            make_allocator(name),
            get_pattern(pattern_name),
            jobs,
            seed=7,
        )
        s = summarize(sim.run())
        rows.append(
            {
                "allocator": name,
                "mean response (s)": s.mean_response,
                "service stretch": s.mean_stretch,
                "% contiguous": 100 * s.fraction_contiguous,
            }
        )
    rows.sort(key=lambda r: r["mean response (s)"])
    print()
    print(
        format_table(
            rows,
            title=f"pattern = {pattern_name} (best to worst)",
            float_fmt=".2f",
        )
    )
