#!/usr/bin/env python
"""Compare the paper's nine allocation strategies on a trace-driven run.

A miniature of the paper's Fig 8 grid: the SDSC-Paragon-like synthetic
trace plays through the FCFS simulator on a 16x16 mesh for each strategy
and each of two communication patterns; the table shows how the ordering
changes with the pattern -- the paper's central observation.

The grid runs on the parallel experiment engine (``repro.runner``): every
(pattern, allocator) cell is an :class:`ExperimentSpec`, the cells fan
out over ``jobs`` worker processes, and results are cached under
``.repro-cache/`` so re-running this script is instant.

Run:  python examples/compare_allocators.py [n_jobs] [workers]
"""

import sys

from repro import ResultCache
from repro.analysis.tables import format_table
from repro.experiments.sweep import PAPER_ALLOCATORS
from repro.runner import run_many, sweep_specs

n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 250
workers = int(sys.argv[2]) if len(sys.argv) > 2 else 2
patterns = ("all-to-all", "n-body")

specs = sweep_specs(
    (16, 16),
    patterns,
    (1.0,),
    PAPER_ALLOCATORS,
    seed=7,
    n_jobs=n_jobs,
    runtime_scale=0.02,
)
cache = ResultCache()
cells = run_many(specs, jobs=workers, cache=cache)
# summary.n_jobs is the post-drop_oversized count actually simulated
print(
    f"trace: {cells[0].summary.n_jobs} jobs on 16x16, {workers} workers; "
    f"{cache.stats_line()}"
)

for pattern_name in patterns:
    rows = []
    for cell in cells:
        if cell.spec.pattern != pattern_name:
            continue
        s = cell.summary
        rows.append(
            {
                "allocator": s.allocator,
                "mean response (s)": s.mean_response,
                "service stretch": s.mean_stretch,
                "% contiguous": 100 * s.fraction_contiguous,
            }
        )
    rows.sort(key=lambda r: r["mean response (s)"])
    print()
    print(
        format_table(
            rows,
            title=f"pattern = {pattern_name} (best to worst)",
            float_fmt=".2f",
        )
    )
